//! IR optimization passes: constant folding and CFG simplification.
//!
//! These mirror the default (`-O1`-ish) behaviour of the paper's gcc
//! toolchain closely enough to give the backends realistic input: constant
//! subexpressions disappear, single-target jump chains are threaded, and
//! unreachable blocks are dropped.

use std::collections::HashMap;

use asteria_lang::interp::{eval_binop, eval_unop};

use crate::ir::{BlockId, Inst, IrFunction, IrProgram, Term, VReg};

/// Runs all passes on every function, to a fixed point per function.
pub fn optimize_program(ir: &mut IrProgram) {
    for f in &mut ir.functions {
        optimize_function(f);
    }
}

/// Runs constant folding and CFG simplification until nothing changes.
pub fn optimize_function(f: &mut IrFunction) {
    loop {
        let mut changed = false;
        changed |= fold_constants(f);
        changed |= thread_jumps(f);
        changed |= remove_unreachable(f);
        if !changed {
            break;
        }
    }
    debug_assert_eq!(f.validate(), Ok(()));
}

/// Per-block constant folding: propagates `Const` defs into `Bin`/`Un`
/// instructions whose operands are all constant, and folds branches on
/// constant conditions into jumps.
///
/// Returns true when anything changed.
pub fn fold_constants(f: &mut IrFunction) -> bool {
    let mut changed = false;
    for b in &mut f.blocks {
        let mut known: HashMap<VReg, i64> = HashMap::new();
        for inst in &mut b.insts {
            match inst {
                Inst::Const(d, v) => {
                    known.insert(*d, *v);
                }
                Inst::Bin(op, d, a, c) => {
                    let (op, d) = (*op, *d);
                    if let (Some(&av), Some(&bv)) = (known.get(a), known.get(c)) {
                        let v = eval_binop(op, av, bv);
                        *inst = Inst::Const(d, v);
                        known.insert(d, v);
                        changed = true;
                    }
                }
                Inst::Un(op, d, a) => {
                    let (op, d) = (*op, *d);
                    if let Some(&av) = known.get(a) {
                        let v = eval_unop(op, av);
                        *inst = Inst::Const(d, v);
                        known.insert(d, v);
                        changed = true;
                    }
                }
                // Any other instruction defining a register invalidates
                // nothing (SSA-ish: vregs are single-assignment by
                // construction of the lowerer within a block).
                _ => {}
            }
        }
        if let Term::Br(c, t, e) = &b.term {
            if let Some(&cv) = known.get(c) {
                b.term = Term::Jmp(if cv != 0 { *t } else { *e });
                changed = true;
            }
        }
    }
    changed
}

/// Threads jumps through empty forwarding blocks (a block with no
/// instructions whose terminator is an unconditional jump).
///
/// Returns true when anything changed.
pub fn thread_jumps(f: &mut IrFunction) -> bool {
    // Resolve the final target of a forwarding chain, with cycle guard.
    let resolve = |start: BlockId, f: &IrFunction| -> BlockId {
        let mut cur = start;
        let mut hops = 0;
        while hops < f.blocks.len() {
            let b = f.block(cur);
            match (&b.insts.is_empty(), &b.term) {
                (true, Term::Jmp(next)) if *next != cur => {
                    cur = *next;
                    hops += 1;
                }
                _ => break,
            }
        }
        cur
    };

    let mut changed = false;
    for i in 0..f.blocks.len() {
        let new_term = match f.blocks[i].term.clone() {
            Term::Jmp(t) => {
                let r = resolve(t, f);
                if r != t {
                    changed = true;
                }
                Term::Jmp(r)
            }
            Term::Br(c, t, e) => {
                let (rt, re) = (resolve(t, f), resolve(e, f));
                if rt != t || re != e {
                    changed = true;
                }
                if rt == re {
                    Term::Jmp(rt)
                } else {
                    Term::Br(c, rt, re)
                }
            }
            other => other,
        };
        f.blocks[i].term = new_term;
    }
    changed
}

/// Removes blocks unreachable from the entry, compacting block ids.
///
/// Returns true when anything changed.
pub fn remove_unreachable(f: &mut IrFunction) -> bool {
    let reachable = f.reachable_blocks();
    if reachable.len() == f.blocks.len() {
        return false;
    }
    let mut sorted = reachable.clone();
    sorted.sort();
    let remap: HashMap<BlockId, BlockId> = sorted
        .iter()
        .enumerate()
        .map(|(new, old)| (*old, BlockId(new as u32)))
        .collect();
    let mut new_blocks = Vec::with_capacity(sorted.len());
    for old in &sorted {
        let mut b = f.block(*old).clone();
        b.term = match b.term {
            Term::Jmp(t) => Term::Jmp(remap[&t]),
            Term::Br(c, t, e) => Term::Br(c, remap[&t], remap[&e]),
            other => other,
        };
        new_blocks.push(b);
    }
    f.blocks = new_blocks;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use asteria_lang::parse;

    fn lowered(src: &str) -> IrFunction {
        let ir = lower_program(&parse(src).unwrap()).unwrap();
        ir.functions.into_iter().next().unwrap()
    }

    #[test]
    fn folds_constant_arithmetic() {
        let mut f = lowered("int f() { return 2 + 3 * 4; }");
        fold_constants(&mut f);
        let consts: Vec<i64> = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(|i| match i {
                Inst::Const(_, v) => Some(*v),
                _ => None,
            })
            .collect();
        assert!(consts.contains(&14));
        assert!(!f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Bin(_, _, _, _))));
    }

    #[test]
    fn folds_constant_branch_and_removes_dead_arm() {
        let mut f = lowered("int f() { if (0) { return 1; } return 2; }");
        optimize_function(&mut f);
        // Entire then-arm should be gone.
        for b in &f.blocks {
            for inst in &b.insts {
                if let Inst::Const(_, v) = inst {
                    assert_ne!(*v, 1, "dead constant survived");
                }
            }
        }
    }

    #[test]
    fn threads_empty_jump_chains() {
        let mut f = lowered("int f(int a) { if (a) { } return a; }");
        let before = f.blocks.len();
        optimize_function(&mut f);
        assert!(f.blocks.len() <= before);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn optimization_preserves_validity_on_loops() {
        let mut f = lowered(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { \
             if (i % 2 == 0) { s += i; } } return s; }",
        );
        optimize_function(&mut f);
        assert!(f.validate().is_ok());
        assert!(!f.blocks.is_empty());
    }

    #[test]
    fn while_true_loop_survives() {
        let mut f = lowered("int f(int n) { while (1) { n--; if (n < 0) { break; } } return n; }");
        optimize_function(&mut f);
        assert!(f.validate().is_ok());
        let has_back_edge = f
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.term.successors().iter().any(|s| (s.0 as usize) <= i));
        assert!(has_back_edge, "loop disappeared:\n{f}");
    }
}

/// Loop rotation (gcc's "loop inversion"): rewrites
/// `while (c) { body }` into `if (c) { do { body } while (c); }` by
/// cloning the header's condition computation into a fresh latch block.
///
/// Real toolchains apply this universally but with per-target cost models;
/// in this reproduction it is enabled for the x64 and PPC backends only,
/// which makes the recovered loop *shape* differ across architectures for
/// the same source — one of the honest cross-architecture AST differences
/// the similarity task must absorb.
///
/// Returns the number of loops rotated.
pub fn rotate_loops(f: &mut IrFunction) -> usize {
    use std::collections::HashMap as Map;
    let mut rotated = 0;
    // Find candidate headers: block H ending Br(c, body, exit) whose
    // instructions are pure (safe to duplicate), with exactly one latch
    // jumping back to it (other than the fallthrough entry edge).
    let n = f.blocks.len();
    for h in 0..n {
        let (cond, body_bb, exit_bb) = match f.blocks[h].term {
            Term::Br(c, t, e) => (c, t, e),
            _ => continue,
        };
        if body_bb.0 as usize == h || exit_bb.0 as usize == h {
            continue;
        }
        // Pure, duplicable header instructions only.
        let pure = f.blocks[h].insts.iter().all(|i| {
            matches!(
                i,
                Inst::Const(_, _)
                    | Inst::Bin(_, _, _, _)
                    | Inst::Un(_, _, _)
                    | Inst::LoadLocal(_, _)
                    | Inst::LoadGlobal(_, _)
                    | Inst::LoadElem(_, _, _)
            )
        });
        if !pure || f.blocks[h].insts.len() > 8 {
            continue;
        }
        // Loop body: blocks reachable from the body entry without passing
        // through the header. The latch is the body block that jumps back
        // to the header (there must be exactly one); the function entry's
        // edge into the header is *not* a latch.
        // (Blocks appended by earlier rotations extend past `n`.)
        let mut in_body = vec![false; f.blocks.len()];
        let mut stack = vec![body_bb.0 as usize];
        while let Some(b) = stack.pop() {
            if b == h || in_body[b] {
                continue;
            }
            in_body[b] = true;
            for s in f.blocks[b].term.successors() {
                stack.push(s.0 as usize);
            }
        }
        let latches: Vec<usize> = (0..f.blocks.len())
            .filter(|b| in_body[*b] && f.blocks[*b].term == Term::Jmp(BlockId(h as u32)))
            .collect();
        if latches.len() != 1 {
            continue;
        }
        let latch = latches[0];
        // Also require that no conditional branch targets the header
        // (keeps the transform simple and safe).
        let cond_preds = (0..f.blocks.len()).any(|b| {
            matches!(f.blocks[b].term, Term::Br(_, t, e)
                if (t.0 as usize == h || e.0 as usize == h) && b != h)
        });
        if cond_preds {
            continue;
        }
        // Clone header instructions with fresh vregs into a new block.
        let mut remap: Map<VReg, VReg> = Map::new();
        let mut cloned = Vec::with_capacity(f.blocks[h].insts.len());
        let header_insts = f.blocks[h].insts.clone();
        for inst in &header_insts {
            let clone_reg = |r: VReg, f: &mut IrFunction, remap: &mut Map<VReg, VReg>| {
                *remap.entry(r).or_insert_with(|| f.new_vreg())
            };
            let use_reg = |r: VReg, remap: &Map<VReg, VReg>| *remap.get(&r).unwrap_or(&r);
            let new_inst = match inst {
                Inst::Const(d, v) => Inst::Const(clone_reg(*d, f, &mut remap), *v),
                Inst::Bin(op, d, a, b) => {
                    let (a2, b2) = (use_reg(*a, &remap), use_reg(*b, &remap));
                    Inst::Bin(*op, clone_reg(*d, f, &mut remap), a2, b2)
                }
                Inst::Un(op, d, a) => {
                    let a2 = use_reg(*a, &remap);
                    Inst::Un(*op, clone_reg(*d, f, &mut remap), a2)
                }
                Inst::LoadLocal(d, l) => Inst::LoadLocal(clone_reg(*d, f, &mut remap), *l),
                Inst::LoadGlobal(d, g) => Inst::LoadGlobal(clone_reg(*d, f, &mut remap), *g),
                Inst::LoadElem(d, l, i) => {
                    let i2 = use_reg(*i, &remap);
                    Inst::LoadElem(clone_reg(*d, f, &mut remap), *l, i2)
                }
                other => other.clone(),
            };
            cloned.push(new_inst);
        }
        let new_cond = *remap.get(&cond).unwrap_or(&cond);
        let new_latch = f.new_block();
        f.block_mut(new_latch).insts = cloned;
        f.block_mut(new_latch).term = Term::Br(new_cond, body_bb, exit_bb);
        f.blocks[latch].term = Term::Jmp(new_latch);
        rotated += 1;
    }
    debug_assert_eq!(f.validate(), Ok(()));
    rotated
}

/// Strength reduction: multiplications by a power-of-two constant become
/// shifts. Enabled for the RISC backends (ARM/PPC), where real compilers
/// lean on the barrel shifter; another honest per-architecture AST delta.
///
/// Returns the number of rewrites.
pub fn strength_reduce(f: &mut IrFunction) -> usize {
    let mut rewrites = 0;
    for b in &mut f.blocks {
        // Constants defined in this block.
        let mut known: HashMap<VReg, i64> = HashMap::new();
        let mut edits: Vec<(usize, VReg, u32)> = Vec::new();
        for (i, inst) in b.insts.iter().enumerate() {
            match inst {
                Inst::Const(d, v) => {
                    known.insert(*d, *v);
                }
                Inst::Bin(asteria_lang::BinOp::Mul, d, a, m) => {
                    if let Some(&k) = known.get(m) {
                        if k > 1 && (k as u64).is_power_of_two() {
                            edits.push((i, *a, (k as u64).trailing_zeros()));
                            let _ = d;
                        }
                    }
                }
                _ => {}
            }
        }
        for (i, a, shift) in edits.into_iter().rev() {
            let d = match &b.insts[i] {
                Inst::Bin(_, d, _, _) => *d,
                _ => unreachable!(),
            };
            let sh = VReg(f.vreg_count);
            f.vreg_count += 1;
            b.insts[i] = Inst::Bin(asteria_lang::BinOp::Shl, d, a, sh);
            b.insts.insert(i, Inst::Const(sh, shift as i64));
            rewrites += 1;
        }
    }
    debug_assert_eq!(f.validate(), Ok(()));
    rewrites
}

#[cfg(test)]
mod arch_opt_tests {
    use super::*;
    use crate::lower::lower_program;
    use asteria_lang::parse;

    fn lowered(src: &str) -> IrFunction {
        let ir = lower_program(&parse(src).unwrap()).unwrap();
        let mut f = ir.functions.into_iter().next().unwrap();
        optimize_function(&mut f);
        f
    }

    #[test]
    fn rotate_loops_rewrites_while() {
        let mut f =
            lowered("int f(int n) { int s = 0; while (n > 0) { s += n; n -= 1; } return s; }");
        let rotated = rotate_loops(&mut f);
        assert_eq!(rotated, 1);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn rotate_skips_impure_headers() {
        // The loop condition contains a call → not duplicable.
        let mut f =
            lowered("int f(int n) { int s = 0; while (ext(n) > 0) { s += 1; n -= 1; } return s; }");
        assert_eq!(rotate_loops(&mut f), 0);
    }

    #[test]
    fn strength_reduce_rewrites_pow2_mul() {
        let mut f = lowered("int f(int a) { return a * 8 + a * 3; }");
        let n = strength_reduce(&mut f);
        assert_eq!(n, 1, "only the ×8 should become a shift");
        let has_shl = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Bin(asteria_lang::BinOp::Shl, _, _, _)));
        assert!(has_shl);
    }

    #[test]
    fn rotated_loops_preserve_semantics() {
        use crate::codegen::codegen_function;
        // Covered more broadly by the differential suite; quick check that
        // rotation + codegen still validates.
        let mut f =
            lowered("int f(int n) { int s = 0; while (n > 3) { s += n; n -= 2; } return s; }");
        rotate_loops(&mut f);
        let m = codegen_function(&f, crate::isa::Arch::X64, &mut |_| 0);
        assert!(!m.insts.is_empty());
    }
}
