//! Binary-level virtual machine.
//!
//! Executes [`Binary`] images instruction by instruction, honouring each
//! architecture's calling convention. Used by the differential test suite
//! to prove that *compile → encode → decode → execute* preserves the MiniC
//! reference semantics on every ISA — the property that makes homologous
//! cross-architecture functions genuinely semantically equivalent, which is
//! the premise of the paper's similarity task.

use std::collections::HashMap;
use std::fmt;

use asteria_lang::interp::{eval_binop, eval_unop, external_call_result, wrap_index};
use asteria_lang::{BinOp, UnOp};

use crate::encode::{decode_function, DecodeError};
use crate::isa::{AluOp, MInst, Mem, UnAluOp};
use crate::sbf::{Binary, SymbolKind};

/// Errors produced by the VM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The step budget was exhausted.
    StepLimit,
    /// Call depth exceeded.
    RecursionLimit,
    /// Symbol index out of range.
    BadSymbol(u32),
    /// Code failed to decode.
    Decode(DecodeError),
    /// Out-of-range frame or argument access.
    BadAccess {
        /// Which access failed.
        what: &'static str,
        /// Offending index.
        index: u32,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::StepLimit => write!(f, "step budget exhausted"),
            VmError::RecursionLimit => write!(f, "recursion limit exceeded"),
            VmError::BadSymbol(s) => write!(f, "bad symbol index {s}"),
            VmError::Decode(e) => write!(f, "decode failure: {e}"),
            VmError::BadAccess { what, index } => write!(f, "bad {what} access at {index}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<DecodeError> for VmError {
    fn from(e: DecodeError) -> Self {
        VmError::Decode(e)
    }
}

fn alu_to_binop(op: AluOp) -> BinOp {
    match op {
        AluOp::Add => BinOp::Add,
        AluOp::Sub => BinOp::Sub,
        AluOp::Mul => BinOp::Mul,
        AluOp::Div => BinOp::Div,
        AluOp::Mod => BinOp::Mod,
        AluOp::And => BinOp::And,
        AluOp::Or => BinOp::Or,
        AluOp::Xor => BinOp::Xor,
        AluOp::Shl => BinOp::Shl,
        AluOp::Shr => BinOp::Shr,
    }
}

/// Default step budget per top-level call.
pub const DEFAULT_STEP_BUDGET: u64 = 20_000_000;

/// Maximum call depth.
pub const MAX_DEPTH: usize = 64;

/// A VM instance bound to one binary.
///
/// Globals persist across calls, like a loaded process image.
///
/// # Examples
///
/// ```
/// use asteria_compiler::{compile_program, Arch, Vm};
///
/// let program = asteria_lang::parse("int dbl(int x) { return x * 2; }")?;
/// let binary = compile_program(&program, Arch::Arm)?;
/// let mut vm = Vm::new(&binary);
/// let sym = binary.symbol_index("dbl").unwrap();
/// assert_eq!(vm.call(sym, &[21])?, 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Vm<'b> {
    binary: &'b Binary,
    globals: Vec<i64>,
    decoded: HashMap<usize, Vec<MInst>>,
    steps_left: u64,
    depth: usize,
    /// Total instructions retired since construction (for benchmarks).
    pub retired: u64,
}

impl<'b> Vm<'b> {
    /// Creates a VM with freshly initialized globals.
    pub fn new(binary: &'b Binary) -> Self {
        Vm {
            binary,
            globals: binary.globals.clone(),
            decoded: HashMap::new(),
            steps_left: DEFAULT_STEP_BUDGET,
            depth: 0,
            retired: 0,
        }
    }

    /// Calls a function symbol with the given arguments.
    ///
    /// # Errors
    ///
    /// See [`VmError`].
    pub fn call(&mut self, sym: usize, args: &[i64]) -> Result<i64, VmError> {
        self.steps_left = DEFAULT_STEP_BUDGET;
        self.call_inner(sym as u32, args)
    }

    fn decoded_insts(&mut self, sym: usize) -> Result<&Vec<MInst>, VmError> {
        if !self.decoded.contains_key(&sym) {
            let code = &self.binary.symbols[sym].code;
            let insts = decode_function(code, self.binary.arch)?;
            self.decoded.insert(sym, insts);
        }
        Ok(self.decoded.get(&sym).expect("just inserted"))
    }

    fn call_inner(&mut self, sym: u32, args: &[i64]) -> Result<i64, VmError> {
        let symbol = self
            .binary
            .symbols
            .get(sym as usize)
            .ok_or(VmError::BadSymbol(sym))?;
        if symbol.kind == SymbolKind::External {
            let name = symbol.name.as_deref().unwrap_or("unknown_extern");
            return Ok(external_call_result(name, args));
        }
        if self.depth >= MAX_DEPTH {
            return Err(VmError::RecursionLimit);
        }
        self.depth += 1;
        let result = self.exec(sym as usize, args);
        self.depth -= 1;
        result
    }

    fn exec(&mut self, sym: usize, args: &[i64]) -> Result<i64, VmError> {
        let arch = self.binary.arch;
        let insts = self.decoded_insts(sym)?.clone();
        let frame_size = self.binary.symbols[sym].frame_size as usize;
        let arg_regs = arch.arg_regs();

        let mut regs = vec![0i64; arch.reg_count() as usize + 1];
        for (i, r) in arg_regs.iter().enumerate() {
            if i < args.len() {
                regs[r.0 as usize] = args[i];
            }
        }
        // Stack-passed arguments (all of them on x86, the excess elsewhere).
        let stack_args: &[i64] = if args.len() > arg_regs.len() || arg_regs.is_empty() {
            &args[arg_regs.len().min(args.len())..]
        } else {
            &[]
        };

        let mut frame = vec![0i64; frame_size];
        let mut pending: Vec<i64> = Vec::new();
        let mut pc = 0usize;

        let read_mem =
            |m: Mem, frame: &[i64], globals: &[i64], stack_args: &[i64]| -> Result<i64, VmError> {
                match m {
                    Mem::Frame(s) => frame.get(s as usize).copied().ok_or(VmError::BadAccess {
                        what: "frame",
                        index: s,
                    }),
                    Mem::Global(s) => globals.get(s as usize).copied().ok_or(VmError::BadAccess {
                        what: "global",
                        index: s,
                    }),
                    Mem::Arg(s) => stack_args
                        .get(s as usize)
                        .copied()
                        .ok_or(VmError::BadAccess {
                            what: "argument",
                            index: s,
                        }),
                }
            };

        while pc < insts.len() {
            if self.steps_left == 0 {
                return Err(VmError::StepLimit);
            }
            self.steps_left -= 1;
            self.retired += 1;
            let inst = &insts[pc];
            pc += 1;
            match inst {
                MInst::MovImm(rd, v) => regs[rd.0 as usize] = *v,
                MInst::Mov(rd, rs) => regs[rd.0 as usize] = regs[rs.0 as usize],
                MInst::LoadStr(rd, sid) => {
                    let s = self
                        .binary
                        .strings
                        .get(*sid as usize)
                        .ok_or(VmError::BadAccess {
                            what: "string",
                            index: *sid,
                        })?;
                    regs[rd.0 as usize] = external_call_result(s, &[]);
                }
                MInst::Load(rd, m) => {
                    regs[rd.0 as usize] = read_mem(*m, &frame, &self.globals, stack_args)?;
                }
                MInst::Store(m, rs) => {
                    let v = regs[rs.0 as usize];
                    match m {
                        Mem::Frame(s) => {
                            *frame.get_mut(*s as usize).ok_or(VmError::BadAccess {
                                what: "frame",
                                index: *s,
                            })? = v;
                        }
                        Mem::Global(s) => {
                            *self
                                .globals
                                .get_mut(*s as usize)
                                .ok_or(VmError::BadAccess {
                                    what: "global",
                                    index: *s,
                                })? = v;
                        }
                        Mem::Arg(s) => {
                            return Err(VmError::BadAccess {
                                what: "argument write",
                                index: *s,
                            })
                        }
                    }
                }
                MInst::LoadIdx { rd, base, idx, len } => {
                    let i = wrap_index(regs[idx.0 as usize], *len as usize);
                    let slot = *base as usize + i;
                    regs[rd.0 as usize] = *frame.get(slot).ok_or(VmError::BadAccess {
                        what: "frame array",
                        index: slot as u32,
                    })?;
                }
                MInst::StoreIdx { rs, base, idx, len } => {
                    let i = wrap_index(regs[idx.0 as usize], *len as usize);
                    let slot = *base as usize + i;
                    let v = regs[rs.0 as usize];
                    *frame.get_mut(slot).ok_or(VmError::BadAccess {
                        what: "frame array",
                        index: slot as u32,
                    })? = v;
                }
                MInst::Alu3(op, rd, ra, rb) => {
                    regs[rd.0 as usize] =
                        eval_binop(alu_to_binop(*op), regs[ra.0 as usize], regs[rb.0 as usize]);
                }
                MInst::Alu2(op, rd, rs) => {
                    regs[rd.0 as usize] =
                        eval_binop(alu_to_binop(*op), regs[rd.0 as usize], regs[rs.0 as usize]);
                }
                MInst::Alu2Mem(op, rd, m) => {
                    let v = read_mem(*m, &frame, &self.globals, stack_args)?;
                    regs[rd.0 as usize] = eval_binop(alu_to_binop(*op), regs[rd.0 as usize], v);
                }
                MInst::UnAlu(op, rd, rs) => {
                    let v = regs[rs.0 as usize];
                    regs[rd.0 as usize] = match op {
                        UnAluOp::Neg => eval_unop(UnOp::Neg, v),
                        UnAluOp::Not => eval_unop(UnOp::Not, v),
                        UnAluOp::BitNot => eval_unop(UnOp::BitNot, v),
                    };
                }
                MInst::SetCc(cc, rd, ra, rb) => {
                    regs[rd.0 as usize] = cc.eval(regs[ra.0 as usize], regs[rb.0 as usize]);
                }
                MInst::CSel { rd, rc, ra, rb } => {
                    regs[rd.0 as usize] = if regs[rc.0 as usize] != 0 {
                        regs[ra.0 as usize]
                    } else {
                        regs[rb.0 as usize]
                    };
                }
                MInst::Brnz(rc, t) => {
                    if regs[rc.0 as usize] != 0 {
                        pc = *t as usize;
                    }
                }
                MInst::Jmp(t) => pc = *t as usize,
                MInst::Push(r) => pending.push(regs[r.0 as usize]),
                MInst::Call { sym: callee, argc } => {
                    let argc = *argc as usize;
                    let mut call_args = Vec::with_capacity(argc);
                    if arg_regs.is_empty() {
                        // Pure stack convention: pushed right-to-left, so the
                        // last `argc` pushes are argN-1 … arg0.
                        let take = pending.split_off(pending.len().saturating_sub(argc));
                        call_args.extend(take.into_iter().rev());
                    } else {
                        let in_regs = argc.min(arg_regs.len());
                        for r in &arg_regs[..in_regs] {
                            call_args.push(regs[r.0 as usize]);
                        }
                        let excess = argc - in_regs;
                        let take = pending.split_off(pending.len().saturating_sub(excess));
                        call_args.extend(take);
                    }
                    let ret = self.call_inner(*callee, &call_args)?;
                    regs[0] = ret;
                }
                MInst::Ret => return Ok(regs[0]),
                MInst::Nop => {}
            }
        }
        // Falling off the end returns 0 (codegen always emits Ret, but
        // hand-crafted binaries may not).
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_program;
    use crate::isa::Arch;
    use asteria_lang::parse;

    fn run_all_arches(src: &str, func: &str, args: &[i64]) -> Vec<i64> {
        let p = parse(src).unwrap();
        Arch::ALL
            .iter()
            .map(|arch| {
                let b = compile_program(&p, *arch).unwrap();
                let sym = b.symbol_index(func).unwrap();
                Vm::new(&b).call(sym, args).unwrap()
            })
            .collect()
    }

    #[test]
    fn simple_arithmetic_on_all_arches() {
        let rs = run_all_arches("int f(int a, int b) { return a * b - 3; }", "f", &[6, 7]);
        assert_eq!(rs, vec![39; 4]);
    }

    #[test]
    fn many_args_exercise_stack_passing() {
        // 10 args exceeds every register window.
        let src = "int f(int a, int b, int c, int d, int e, int g, int h, int i, int j, int k) \
                   { return a + b*2 + c*3 + d*4 + e*5 + g*6 + h*7 + i*8 + j*9 + k*10; }";
        let args: Vec<i64> = (1..=10).collect();
        let expect: i64 = (1..=10).map(|i| i * i).sum();
        assert_eq!(run_all_arches(src, "f", &args), vec![expect; 4]);
    }

    #[test]
    fn cross_function_calls_and_globals() {
        let src = "int g = 10; int helper(int x) { g += x; return g; } \
                   int f(int a) { helper(a); helper(a); return g; }";
        assert_eq!(run_all_arches(src, "f", &[5]), vec![20; 4]);
    }

    #[test]
    fn extern_calls_match_reference_semantics() {
        let src = "int f(int a) { return ext_fn(a, 2); }";
        let expect = external_call_result("ext_fn", &[9, 2]);
        assert_eq!(run_all_arches(src, "f", &[9]), vec![expect; 4]);
    }

    #[test]
    fn step_limit_fires_on_infinite_loop() {
        let p = parse("int f() { int x = 1; while (x) { x = 1; } return 0; }").unwrap();
        let b = compile_program(&p, Arch::X86).unwrap();
        let sym = b.symbol_index("f").unwrap();
        assert_eq!(Vm::new(&b).call(sym, &[]), Err(VmError::StepLimit));
    }

    #[test]
    fn recursion_limit_fires() {
        let p = parse("int f(int n) { return f(n); }").unwrap();
        let b = compile_program(&p, Arch::Arm).unwrap();
        let sym = b.symbol_index("f").unwrap();
        assert_eq!(Vm::new(&b).call(sym, &[1]), Err(VmError::RecursionLimit));
    }

    #[test]
    fn bad_symbol_index_errors() {
        let p = parse("int f() { return 1; }").unwrap();
        let b = compile_program(&p, Arch::Ppc).unwrap();
        assert!(matches!(
            Vm::new(&b).call(99, &[]),
            Err(VmError::BadSymbol(99))
        ));
    }
}
