//! SBF ("Simple Binary Format") — the reproduction's executable container.
//!
//! An [`Binary`] plays the role of an ELF object in the paper's pipeline:
//! it carries per-function machine code for one architecture, a symbol
//! table (optionally stripped, as vendor firmware is), a global data
//! segment, and a string table. [`crate::vm::Vm`] executes it and the
//! decompiler in `asteria-decompiler` lifts it back to ASTs.

use std::fmt;
use std::io::{self, Read, Write};

use crate::isa::Arch;

/// Kind of a symbol-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolKind {
    /// A function defined in this binary (has code).
    Function,
    /// An imported function (externals keep their names even in stripped
    /// binaries, like dynamic imports in real firmware).
    External,
}

/// A symbol-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name; `None` after stripping (tools then synthesize
    /// `sub_<offset>` names, as IDA does for the paper's firmware dataset).
    pub name: Option<String>,
    /// Function or external.
    pub kind: SymbolKind,
    /// Declared parameter count.
    pub param_count: u32,
    /// Frame size in 64-bit slots (functions only).
    pub frame_size: u32,
    /// Virtual address of the entry point.
    pub offset: u64,
    /// Encoded machine code (empty for externals).
    pub code: Vec<u8>,
}

impl Symbol {
    /// Display name: the symbol name, or `sub_<offset>` when stripped.
    pub fn display_name(&self) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None => format!("sub_{:x}", self.offset),
        }
    }
}

/// A compiled binary for one architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binary {
    /// Target architecture.
    pub arch: Arch,
    /// Symbol table; defined functions and externals.
    pub symbols: Vec<Symbol>,
    /// Global data segment initial values.
    pub globals: Vec<i64>,
    /// String constant table.
    pub strings: Vec<String>,
}

impl Binary {
    /// Indices of all defined functions.
    pub fn function_indices(&self) -> Vec<usize> {
        (0..self.symbols.len())
            .filter(|i| self.symbols[*i].kind == SymbolKind::Function)
            .collect()
    }

    /// Looks up a symbol index by name.
    pub fn symbol_index(&self, name: &str) -> Option<usize> {
        self.symbols
            .iter()
            .position(|s| s.name.as_deref() == Some(name))
    }

    /// Total code size in bytes.
    pub fn code_size(&self) -> usize {
        self.symbols.iter().map(|s| s.code.len()).sum()
    }

    /// Removes the names of defined functions, mimicking `strip` on release
    /// firmware (external imports keep their names).
    pub fn strip(&mut self) {
        for s in &mut self.symbols {
            if s.kind == SymbolKind::Function {
                s.name = None;
            }
        }
    }

    /// Serializes the binary.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        fn put_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
            w.write_all(&v.to_le_bytes())
        }
        fn put_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
            put_u32(w, s.len() as u32)?;
            w.write_all(s.as_bytes())
        }
        w.write_all(b"SBF1")?;
        w.write_all(&[match self.arch {
            Arch::X86 => 0,
            Arch::X64 => 1,
            Arch::Arm => 2,
            Arch::Ppc => 3,
        }])?;
        put_u32(&mut w, self.symbols.len() as u32)?;
        for s in &self.symbols {
            match &s.name {
                Some(n) => {
                    w.write_all(&[1])?;
                    put_str(&mut w, n)?;
                }
                None => w.write_all(&[0])?,
            }
            w.write_all(&[match s.kind {
                SymbolKind::Function => 0,
                SymbolKind::External => 1,
            }])?;
            put_u32(&mut w, s.param_count)?;
            put_u32(&mut w, s.frame_size)?;
            w.write_all(&s.offset.to_le_bytes())?;
            put_u32(&mut w, s.code.len() as u32)?;
            w.write_all(&s.code)?;
        }
        put_u32(&mut w, self.globals.len() as u32)?;
        for g in &self.globals {
            w.write_all(&g.to_le_bytes())?;
        }
        put_u32(&mut w, self.strings.len() as u32)?;
        for s in &self.strings {
            put_str(&mut w, s)?;
        }
        Ok(())
    }

    /// Deserializes a binary written by [`Binary::save`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed input and propagates reader
    /// errors.
    pub fn load<R: Read>(mut r: R) -> io::Result<Binary> {
        // Length prefixes are attacker-controlled: cap initial
        // capacities and grow buffers from bytes actually read, so a
        // lying prefix fails with `Truncated`-style `UnexpectedEof`
        // instead of a huge up-front allocation.
        const MAX_PREALLOC: usize = 1 << 16;
        fn bad(msg: &str) -> io::Error {
            io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
        }
        fn get_u8<R: Read>(r: &mut R) -> io::Result<u8> {
            let mut b = [0u8; 1];
            r.read_exact(&mut b)?;
            Ok(b[0])
        }
        fn get_u32<R: Read>(r: &mut R) -> io::Result<u32> {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            Ok(u32::from_le_bytes(b))
        }
        fn get_u64<R: Read>(r: &mut R) -> io::Result<u64> {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            Ok(u64::from_le_bytes(b))
        }
        fn get_bytes<R: Read>(r: &mut R, n: usize) -> io::Result<Vec<u8>> {
            let mut buf = Vec::with_capacity(n.min(MAX_PREALLOC));
            let got = r.take(n as u64).read_to_end(&mut buf)?;
            if got != n {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("stream ended after {got} of {n} declared bytes"),
                ));
            }
            Ok(buf)
        }
        fn get_str<R: Read>(r: &mut R) -> io::Result<String> {
            let n = get_u32(r)? as usize;
            if n > 1 << 24 {
                return Err(bad("unreasonable string length"));
            }
            let buf = get_bytes(r, n)?;
            String::from_utf8(buf).map_err(|_| bad("string not utf-8"))
        }
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"SBF1" {
            return Err(bad("bad magic"));
        }
        let arch = match get_u8(&mut r)? {
            0 => Arch::X86,
            1 => Arch::X64,
            2 => Arch::Arm,
            3 => Arch::Ppc,
            _ => return Err(bad("unknown architecture")),
        };
        let nsyms = get_u32(&mut r)? as usize;
        let mut symbols = Vec::with_capacity(nsyms.min(MAX_PREALLOC));
        for _ in 0..nsyms {
            let name = match get_u8(&mut r)? {
                1 => Some(get_str(&mut r)?),
                0 => None,
                _ => return Err(bad("bad name flag")),
            };
            let kind = match get_u8(&mut r)? {
                0 => SymbolKind::Function,
                1 => SymbolKind::External,
                _ => return Err(bad("bad symbol kind")),
            };
            let param_count = get_u32(&mut r)?;
            let frame_size = get_u32(&mut r)?;
            let offset = get_u64(&mut r)?;
            let code_len = get_u32(&mut r)? as usize;
            if code_len > 1 << 28 {
                return Err(bad("unreasonable code length"));
            }
            let code = get_bytes(&mut r, code_len)?;
            symbols.push(Symbol {
                name,
                kind,
                param_count,
                frame_size,
                offset,
                code,
            });
        }
        let nglobals = get_u32(&mut r)? as usize;
        let mut globals = Vec::with_capacity(nglobals.min(MAX_PREALLOC));
        for _ in 0..nglobals {
            globals.push(get_u64(&mut r)? as i64);
        }
        let nstrings = get_u32(&mut r)? as usize;
        let mut strings = Vec::with_capacity(nstrings.min(MAX_PREALLOC));
        for _ in 0..nstrings {
            strings.push(get_str(&mut r)?);
        }
        Ok(Binary {
            arch,
            symbols,
            globals,
            strings,
        })
    }
}

impl fmt::Display for Binary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SBF[{}] {} symbols, {} bytes code, {} globals, {} strings",
            self.arch,
            self.symbols.len(),
            self.code_size(),
            self.globals.len(),
            self.strings.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Binary {
        Binary {
            arch: Arch::Arm,
            symbols: vec![
                Symbol {
                    name: Some("main".into()),
                    kind: SymbolKind::Function,
                    param_count: 2,
                    frame_size: 8,
                    offset: 0x1000,
                    code: vec![1, 2, 3, 4],
                },
                Symbol {
                    name: Some("printf".into()),
                    kind: SymbolKind::External,
                    param_count: 0,
                    frame_size: 0,
                    offset: 0,
                    code: vec![],
                },
            ],
            globals: vec![7, -9],
            strings: vec!["hello".into()],
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let b = sample();
        let mut buf = Vec::new();
        b.save(&mut buf).unwrap();
        let b2 = Binary::load(buf.as_slice()).unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn strip_removes_function_names_only() {
        let mut b = sample();
        b.strip();
        assert_eq!(b.symbols[0].name, None);
        assert_eq!(b.symbols[1].name.as_deref(), Some("printf"));
        assert_eq!(b.symbols[0].display_name(), "sub_1000");
    }

    #[test]
    fn load_rejects_bad_magic() {
        assert!(Binary::load(&b"ELF!"[..]).is_err());
    }

    #[test]
    fn load_rejects_lying_length_prefixes_without_huge_allocation() {
        // Claim u32::MAX symbols with an empty body: must error quickly,
        // not attempt a multi-gigabyte reservation.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"SBF1");
        buf.push(2); // arch = ARM
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Binary::load(buf.as_slice()).is_err());
    }

    #[test]
    fn load_rejects_code_length_beyond_stream() {
        let b = sample();
        let mut buf = Vec::new();
        b.save(&mut buf).unwrap();
        // Symbol 0's code length field sits 21 bytes past the start of
        // its name: name(4) + kind(1) + params(4) + frame(4) + offset(8).
        let name = buf.windows(4).position(|w| w == b"main").expect("name");
        let pos = name + 21;
        assert_eq!(&buf[pos..pos + 4], &4u32.to_le_bytes());
        buf[pos..pos + 4].copy_from_slice(&(1u32 << 27).to_le_bytes());
        let err = Binary::load(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn load_never_panics_on_truncations() {
        let b = sample();
        let mut buf = Vec::new();
        b.save(&mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(Binary::load(&buf[..cut]).is_err(), "truncation at {cut}");
        }
    }

    #[test]
    fn function_indices_skip_externals() {
        let b = sample();
        assert_eq!(b.function_indices(), vec![0]);
    }

    #[test]
    fn symbol_lookup_by_name() {
        let b = sample();
        assert_eq!(b.symbol_index("printf"), Some(1));
        assert_eq!(b.symbol_index("nope"), None);
    }
}
