//! Lowering from the MiniC AST to the three-address IR.

use std::collections::HashMap;

use asteria_lang::{BinOp, Expr, Function, IncDec, LValue, Program, Stmt, UnOp};

use crate::ir::{
    Block, BlockId, GlobalId, Inst, IrFunction, IrProgram, LocalId, LocalInfo, LocalKind, Term,
    VReg,
};

/// Errors produced during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// Reference to a variable that is neither local nor global.
    UnknownVar {
        /// Enclosing function.
        function: String,
        /// Variable name.
        variable: String,
    },
    /// `break`/`continue` outside a loop.
    MisplacedJump {
        /// Enclosing function.
        function: String,
    },
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::UnknownVar { function, variable } => {
                write!(f, "unknown variable {variable} in {function}")
            }
            LowerError::MisplacedJump { function } => {
                write!(f, "break/continue outside loop in {function}")
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// Lowers a full program to IR.
///
/// # Errors
///
/// Returns the first [`LowerError`] encountered.
///
/// # Examples
///
/// ```
/// let program = asteria_lang::parse("int f(int a) { return a + 1; }")?;
/// let ir = asteria_compiler::lower_program(&program)?;
/// assert_eq!(ir.functions.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lower_program(program: &Program) -> Result<IrProgram, LowerError> {
    let mut ir = IrProgram {
        functions: Vec::new(),
        globals: program
            .globals
            .iter()
            .map(|g| (g.name.clone(), g.value))
            .collect(),
        strings: Vec::new(),
    };
    for f in &program.functions {
        let lowered = Lowerer::new(f, &mut ir).lower()?;
        debug_assert_eq!(lowered.validate(), Ok(()));
        ir.functions.push(lowered);
    }
    Ok(ir)
}

enum Slot {
    Scalar(LocalId),
    Array(LocalId),
    Global(GlobalId),
}

struct LoopCtx {
    break_to: BlockId,
    continue_to: BlockId,
}

struct Lowerer<'a> {
    source: &'a Function,
    func: IrFunction,
    program: &'a mut IrProgram,
    scopes: Vec<HashMap<String, LocalId>>,
    loops: Vec<LoopCtx>,
    current: BlockId,
    /// Set when the current block already ended in a terminator.
    sealed: bool,
}

impl<'a> Lowerer<'a> {
    fn new(source: &'a Function, program: &'a mut IrProgram) -> Self {
        let mut func = IrFunction {
            name: source.name.clone(),
            param_count: source.params.len(),
            locals: Vec::new(),
            blocks: vec![Block::new()],
            vreg_count: 0,
        };
        let mut top = HashMap::new();
        for p in &source.params {
            let id = LocalId(func.locals.len() as u32);
            func.locals.push(LocalInfo {
                name: p.name.clone(),
                kind: LocalKind::Scalar,
            });
            top.insert(p.name.clone(), id);
        }
        Lowerer {
            source,
            func,
            program,
            scopes: vec![top],
            loops: Vec::new(),
            current: BlockId(0),
            sealed: false,
        }
    }

    fn lower(mut self) -> Result<IrFunction, LowerError> {
        let body = self.source.body.clone();
        self.stmts(&body)?;
        if !self.sealed {
            self.func.block_mut(self.current).term = Term::Ret(None);
        }
        Ok(self.func)
    }

    fn emit(&mut self, inst: Inst) {
        if !self.sealed {
            self.func.block_mut(self.current).insts.push(inst);
        }
    }

    fn seal(&mut self, term: Term) {
        if !self.sealed {
            self.func.block_mut(self.current).term = term;
            self.sealed = true;
        }
    }

    fn switch_to(&mut self, b: BlockId) {
        self.current = b;
        self.sealed = false;
    }

    fn new_scalar(&mut self, name: impl Into<String>) -> LocalId {
        let id = LocalId(self.func.locals.len() as u32);
        self.func.locals.push(LocalInfo {
            name: name.into(),
            kind: LocalKind::Scalar,
        });
        id
    }

    fn resolve(&self, name: &str) -> Result<Slot, LowerError> {
        for scope in self.scopes.iter().rev() {
            if let Some(id) = scope.get(name) {
                let kind = &self.func.locals[id.0 as usize].kind;
                return Ok(match kind {
                    LocalKind::Scalar => Slot::Scalar(*id),
                    LocalKind::Array(_) => Slot::Array(*id),
                });
            }
        }
        if let Some(g) = self.program.global_id(name) {
            return Ok(Slot::Global(g));
        }
        Err(LowerError::UnknownVar {
            function: self.source.name.clone(),
            variable: name.to_string(),
        })
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), LowerError> {
        self.scopes.push(HashMap::new());
        for s in body {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        if self.sealed {
            // Unreachable statement after return/break; skip (dead code).
            return Ok(());
        }
        match s {
            Stmt::Local(name, init) => {
                let v = self.expr(init)?;
                let id = self.new_scalar(name.clone());
                self.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), id);
                self.emit(Inst::StoreLocal(id, v));
            }
            Stmt::LocalArray(name, size) => {
                let id = LocalId(self.func.locals.len() as u32);
                self.func.locals.push(LocalInfo {
                    name: name.clone(),
                    kind: LocalKind::Array(*size),
                });
                self.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), id);
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
            }
            Stmt::If(cond, then_body, else_body) => {
                let then_bb = self.func.new_block();
                let join_bb = self.func.new_block();
                let else_bb = if else_body.is_empty() {
                    join_bb
                } else {
                    self.func.new_block()
                };
                self.cond(cond, then_bb, else_bb)?;
                self.switch_to(then_bb);
                self.stmts(then_body)?;
                self.seal(Term::Jmp(join_bb));
                if !else_body.is_empty() {
                    self.switch_to(else_bb);
                    self.stmts(else_body)?;
                    self.seal(Term::Jmp(join_bb));
                }
                self.switch_to(join_bb);
            }
            Stmt::While(cond, body) => {
                let head = self.func.new_block();
                let body_bb = self.func.new_block();
                let exit = self.func.new_block();
                self.seal(Term::Jmp(head));
                self.switch_to(head);
                self.cond(cond, body_bb, exit)?;
                self.loops.push(LoopCtx {
                    break_to: exit,
                    continue_to: head,
                });
                self.switch_to(body_bb);
                self.stmts(body)?;
                self.seal(Term::Jmp(head));
                self.loops.pop();
                self.switch_to(exit);
            }
            Stmt::DoWhile(body, cond) => {
                let body_bb = self.func.new_block();
                let latch = self.func.new_block();
                let exit = self.func.new_block();
                self.seal(Term::Jmp(body_bb));
                self.loops.push(LoopCtx {
                    break_to: exit,
                    continue_to: latch,
                });
                self.switch_to(body_bb);
                self.stmts(body)?;
                self.seal(Term::Jmp(latch));
                self.loops.pop();
                self.switch_to(latch);
                self.cond(cond, body_bb, exit)?;
                self.switch_to(exit);
            }
            Stmt::For(init, cond, step, body) => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                let head = self.func.new_block();
                let body_bb = self.func.new_block();
                let latch = self.func.new_block();
                let exit = self.func.new_block();
                self.seal(Term::Jmp(head));
                self.switch_to(head);
                self.cond(cond, body_bb, exit)?;
                self.loops.push(LoopCtx {
                    break_to: exit,
                    continue_to: latch,
                });
                self.switch_to(body_bb);
                self.stmts(body)?;
                self.seal(Term::Jmp(latch));
                self.loops.pop();
                self.switch_to(latch);
                if let Some(step) = step {
                    self.stmt(step)?;
                }
                self.seal(Term::Jmp(head));
                self.scopes.pop();
                self.switch_to(exit);
            }
            Stmt::Switch(scrutinee, cases) => {
                let v = self.expr(scrutinee)?;
                let exit = self.func.new_block();
                // Compare chain over the non-default arms; default (or exit)
                // is the final fallthrough.
                let default_bb = if cases.iter().any(|c| c.value.is_none()) {
                    self.func.new_block()
                } else {
                    exit
                };
                let mut arm_blocks = Vec::new();
                for case in cases {
                    match case.value {
                        Some(val) => {
                            let arm = self.func.new_block();
                            arm_blocks.push((arm, &case.body));
                            let next_test = self.func.new_block();
                            let c = self.func.new_vreg();
                            let k = self.func.new_vreg();
                            self.emit(Inst::Const(k, val));
                            self.emit(Inst::Bin(BinOp::Eq, c, v, k));
                            self.seal(Term::Br(c, arm, next_test));
                            self.switch_to(next_test);
                        }
                        None => {
                            arm_blocks.push((default_bb, &case.body));
                        }
                    }
                }
                // Fallthrough after all tests: default arm or exit.
                self.seal(Term::Jmp(default_bb));
                // `break` inside a switch exits the switch.
                self.loops.push(LoopCtx {
                    break_to: exit,
                    continue_to: exit,
                });
                for (bb, body) in arm_blocks {
                    self.switch_to(bb);
                    self.stmts(body)?;
                    self.seal(Term::Jmp(exit));
                }
                self.loops.pop();
                self.switch_to(exit);
            }
            Stmt::Return(Some(e)) => {
                let v = self.expr(e)?;
                self.seal(Term::Ret(Some(v)));
            }
            Stmt::Return(None) => self.seal(Term::Ret(None)),
            Stmt::Break => {
                let target = self
                    .loops
                    .last()
                    .ok_or(LowerError::MisplacedJump {
                        function: self.source.name.clone(),
                    })?
                    .break_to;
                self.seal(Term::Jmp(target));
            }
            Stmt::Continue => {
                let target = self
                    .loops
                    .last()
                    .ok_or(LowerError::MisplacedJump {
                        function: self.source.name.clone(),
                    })?
                    .continue_to;
                self.seal(Term::Jmp(target));
            }
        }
        Ok(())
    }

    /// Lowers a boolean context: branch to `then_bb` when `e != 0`.
    ///
    /// Comparisons and short-circuit operators become control flow directly
    /// instead of materializing 0/1 values, like a real compiler.
    fn cond(&mut self, e: &Expr, then_bb: BlockId, else_bb: BlockId) -> Result<(), LowerError> {
        match e {
            Expr::Binary(BinOp::LogAnd, a, b) => {
                let mid = self.func.new_block();
                self.cond(a, mid, else_bb)?;
                self.switch_to(mid);
                self.cond(b, then_bb, else_bb)
            }
            Expr::Binary(BinOp::LogOr, a, b) => {
                let mid = self.func.new_block();
                self.cond(a, then_bb, mid)?;
                self.switch_to(mid);
                self.cond(b, then_bb, else_bb)
            }
            Expr::Unary(UnOp::Not, inner) => self.cond(inner, else_bb, then_bb),
            _ => {
                let v = self.expr(e)?;
                self.seal(Term::Br(v, then_bb, else_bb));
                Ok(())
            }
        }
    }

    fn read_lvalue(&mut self, lv: &LValue) -> Result<VReg, LowerError> {
        match lv {
            LValue::Var(name) => {
                let d = self.func.new_vreg();
                match self.resolve(name)? {
                    Slot::Scalar(l) | Slot::Array(l) => self.emit(Inst::LoadLocal(d, l)),
                    Slot::Global(g) => self.emit(Inst::LoadGlobal(d, g)),
                }
                Ok(d)
            }
            LValue::Index(name, idx) => {
                let i = self.expr(idx)?;
                let d = self.func.new_vreg();
                match self.resolve(name)? {
                    Slot::Array(l) | Slot::Scalar(l) => self.emit(Inst::LoadElem(d, l, i)),
                    Slot::Global(_) => {
                        return Err(LowerError::UnknownVar {
                            function: self.source.name.clone(),
                            variable: format!("{name}[]"),
                        })
                    }
                }
                Ok(d)
            }
        }
    }

    fn write_lvalue(&mut self, lv: &LValue, value: VReg) -> Result<(), LowerError> {
        match lv {
            LValue::Var(name) => match self.resolve(name)? {
                Slot::Scalar(l) | Slot::Array(l) => self.emit(Inst::StoreLocal(l, value)),
                Slot::Global(g) => self.emit(Inst::StoreGlobal(g, value)),
            },
            LValue::Index(name, idx) => {
                let i = self.expr(idx)?;
                match self.resolve(name)? {
                    Slot::Array(l) | Slot::Scalar(l) => self.emit(Inst::StoreElem(l, i, value)),
                    Slot::Global(_) => {
                        return Err(LowerError::UnknownVar {
                            function: self.source.name.clone(),
                            variable: format!("{name}[]"),
                        })
                    }
                }
            }
        }
        Ok(())
    }

    fn expr(&mut self, e: &Expr) -> Result<VReg, LowerError> {
        match e {
            Expr::Num(n) => {
                let d = self.func.new_vreg();
                self.emit(Inst::Const(d, *n));
                Ok(d)
            }
            Expr::Str(s) => {
                let sid = self.program.intern_string(s);
                let d = self.func.new_vreg();
                self.emit(Inst::Str(d, sid));
                Ok(d)
            }
            Expr::Var(name) => self.read_lvalue(&LValue::Var(name.clone())),
            Expr::Index(name, idx) => self.read_lvalue(&LValue::Index(name.clone(), idx.clone())),
            Expr::Call(name, args) => {
                let mut regs = Vec::with_capacity(args.len());
                for a in args {
                    regs.push(self.expr(a)?);
                }
                let d = self.func.new_vreg();
                self.emit(Inst::Call(d, name.clone(), regs));
                Ok(d)
            }
            Expr::Unary(op, inner) => {
                let a = self.expr(inner)?;
                let d = self.func.new_vreg();
                self.emit(Inst::Un(*op, d, a));
                Ok(d)
            }
            Expr::Binary(op, a, b) if op.is_logical() => {
                // Short-circuit: materialize into a temp local via CFG.
                let tmp = self.new_scalar(format!("$t{}", self.func.locals.len()));
                let then_bb = self.func.new_block();
                let else_bb = self.func.new_block();
                let join = self.func.new_block();
                self.cond(e, then_bb, else_bb)?;
                self.switch_to(then_bb);
                let one = self.func.new_vreg();
                self.emit(Inst::Const(one, 1));
                self.emit(Inst::StoreLocal(tmp, one));
                self.seal(Term::Jmp(join));
                self.switch_to(else_bb);
                let zero = self.func.new_vreg();
                self.emit(Inst::Const(zero, 0));
                self.emit(Inst::StoreLocal(tmp, zero));
                self.seal(Term::Jmp(join));
                self.switch_to(join);
                let d = self.func.new_vreg();
                self.emit(Inst::LoadLocal(d, tmp));
                Ok(d)
            }
            Expr::Binary(op, a, b) => {
                let ra = self.expr(a)?;
                let rb = self.expr(b)?;
                let d = self.func.new_vreg();
                self.emit(Inst::Bin(*op, d, ra, rb));
                Ok(d)
            }
            Expr::Assign(op, lv, rhs) => {
                let r = self.expr(rhs)?;
                let value = match op.binop() {
                    None => r,
                    Some(bop) => {
                        let old = self.read_lvalue(lv)?;
                        let d = self.func.new_vreg();
                        self.emit(Inst::Bin(bop, d, old, r));
                        d
                    }
                };
                self.write_lvalue(lv, value)?;
                Ok(value)
            }
            Expr::IncDec(kind, lv) => {
                let old = self.read_lvalue(lv)?;
                let one = self.func.new_vreg();
                self.emit(Inst::Const(one, 1));
                let new = self.func.new_vreg();
                let op = match kind {
                    IncDec::PreInc | IncDec::PostInc => BinOp::Add,
                    IncDec::PreDec | IncDec::PostDec => BinOp::Sub,
                };
                self.emit(Inst::Bin(op, new, old, one));
                self.write_lvalue(lv, new)?;
                Ok(match kind {
                    IncDec::PreInc | IncDec::PreDec => new,
                    IncDec::PostInc | IncDec::PostDec => old,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asteria_lang::parse;

    fn lower_src(src: &str) -> IrProgram {
        lower_program(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn lowers_straightline_code() {
        let ir = lower_src("int f(int a, int b) { return a + b * 2; }");
        let f = ir.function("f").unwrap();
        assert_eq!(f.param_count, 2);
        assert_eq!(f.blocks.len(), 1);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn if_creates_diamond() {
        let ir = lower_src("int f(int a) { if (a > 0) { return 1; } else { return 2; } }");
        let f = ir.function("f").unwrap();
        // entry + then + join + else
        assert_eq!(f.blocks.len(), 4);
        assert!(matches!(f.block(BlockId(0)).term, Term::Br(_, _, _)));
    }

    #[test]
    fn while_creates_loop() {
        let ir = lower_src("int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }");
        let f = ir.function("f").unwrap();
        assert!(f.validate().is_ok());
        // Must contain a back edge: some block branches to an earlier block.
        let has_back_edge = f
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.term.successors().iter().any(|s| (s.0 as usize) <= i));
        assert!(has_back_edge);
    }

    #[test]
    fn short_circuit_becomes_control_flow() {
        let ir = lower_src("int f(int a, int b) { if (a > 0 && b > 0) { return 1; } return 0; }");
        let f = ir.function("f").unwrap();
        // No LogAnd instruction should survive lowering.
        for b in &f.blocks {
            for inst in &b.insts {
                if let Inst::Bin(op, _, _, _) = inst {
                    assert!(!op.is_logical(), "logical op leaked into IR: {op:?}");
                }
            }
        }
        assert!(f.blocks.len() >= 4);
    }

    #[test]
    fn logical_value_materializes_temp() {
        let ir = lower_src("int f(int a, int b) { int c = a && b; return c; }");
        let f = ir.function("f").unwrap();
        assert!(f.validate().is_ok());
        assert!(f.locals.iter().any(|l| l.name.starts_with("$t")));
    }

    #[test]
    fn switch_lowers_to_compare_chain() {
        let ir = lower_src(
            "int f(int x) { switch (x) { case 1: return 10; case 2: return 20; \
             default: return 0; } }",
        );
        let f = ir.function("f").unwrap();
        assert!(f.validate().is_ok());
        let eq_count = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Bin(BinOp::Eq, _, _, _)))
            .count();
        assert_eq!(eq_count, 2);
    }

    #[test]
    fn break_continue_resolve_to_loop_blocks() {
        let ir = lower_src(
            "int f(int n) { int s = 0; while (1) { n--; if (n < 0) { break; } \
             if (n % 2) { continue; } s++; } return s; }",
        );
        assert!(ir.function("f").unwrap().validate().is_ok());
    }

    #[test]
    fn misplaced_break_is_error() {
        let p = parse("int f() { break; return 0; }").unwrap();
        assert!(matches!(
            lower_program(&p),
            Err(LowerError::MisplacedJump { .. })
        ));
    }

    #[test]
    fn unknown_variable_is_error() {
        let p = parse("int f() { return zz; }").unwrap();
        assert!(matches!(
            lower_program(&p),
            Err(LowerError::UnknownVar { .. })
        ));
    }

    #[test]
    fn globals_resolve() {
        let ir = lower_src("int g = 5; int f() { g = g + 1; return g; }");
        let f = ir.function("f").unwrap();
        let uses_global = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::LoadGlobal(_, _) | Inst::StoreGlobal(_, _)));
        assert!(uses_global);
    }

    #[test]
    fn strings_are_interned() {
        let ir = lower_src(r#"int f() { log("x"); warn("x"); return 0; }"#);
        assert_eq!(ir.strings.len(), 1);
    }

    #[test]
    fn dead_code_after_return_is_dropped() {
        let ir = lower_src("int f() { return 1; return 2; }");
        let f = ir.function("f").unwrap();
        assert!(f.validate().is_ok());
    }
}
