//! Synthetic instruction set architectures.
//!
//! The reproduction targets four ISAs that mirror the architectural axes the
//! paper's evaluation spans (x86, x64, ARM, PPC): operand arity (two- vs
//! three-address), argument passing (stack vs register windows of differing
//! width), memory-operand ALU forms, conditional-select support, hardware
//! remainder support, and — importantly for the disassembler — entirely
//! different binary encodings with different instruction widths.
//!
//! All four share a canonical in-memory instruction form, [`MInst`], so the
//! VM and decompiler can be written once; what differs per architecture is
//! which forms the code generator may emit and how they encode to bytes.

use std::fmt;

/// A machine register. Each architecture exposes `reg_count()` registers;
/// register 0 always carries return values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// Comparison flavours for [`MInst::SetCc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// equal
    Eq,
    /// not equal
    Ne,
    /// signed less-than
    Lt,
    /// signed less-or-equal
    Le,
    /// signed greater-than
    Gt,
    /// signed greater-or-equal
    Ge,
}

impl CmpOp {
    /// All comparison flavours, in encoding order.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// Evaluates the comparison on two values, yielding 0 or 1.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        let r = match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        };
        r as i64
    }
}

/// Binary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// wrapping addition
    Add,
    /// wrapping subtraction
    Sub,
    /// wrapping multiplication
    Mul,
    /// division (0 on divide-by-zero)
    Div,
    /// remainder (dividend on divide-by-zero); absent on PPC
    Mod,
    /// bitwise and
    And,
    /// bitwise or
    Or,
    /// bitwise xor
    Xor,
    /// shift left (amount masked to 6 bits)
    Shl,
    /// arithmetic shift right (amount masked to 6 bits)
    Shr,
}

impl AluOp {
    /// All ALU operations, in encoding order.
    pub const ALL: [AluOp; 10] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Mod,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
    ];
}

/// Unary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnAluOp {
    /// two's-complement negation; absent on PPC (expanded to `0 - x`)
    Neg,
    /// logical not (`x == 0`)
    Not,
    /// bitwise complement
    BitNot,
}

/// A memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mem {
    /// Frame slot `index` of the current function (locals and spills).
    Frame(u32),
    /// Global data slot.
    Global(u32),
    /// Incoming stack argument `index` (stack-convention architectures).
    Arg(u32),
}

/// The canonical machine instruction form shared by all four ISAs.
///
/// Jump targets are *instruction indices* within the owning function; the
/// per-architecture encoders translate them to byte offsets and back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MInst {
    /// `rd ← imm`
    MovImm(Reg, i64),
    /// `rd ← rs`
    Mov(Reg, Reg),
    /// `rd ← &strings[sid]` (string-constant address materialization)
    LoadStr(Reg, u32),
    /// `rd ← mem`
    Load(Reg, Mem),
    /// `mem ← rs`
    Store(Mem, Reg),
    /// `rd ← frame_array[base + wrap(idx, len)]`
    LoadIdx {
        /// destination
        rd: Reg,
        /// frame slot index of the array base
        base: u32,
        /// register holding the element index
        idx: Reg,
        /// array length used for index wrapping
        len: u32,
    },
    /// `frame_array[base + wrap(idx, len)] ← rs`
    StoreIdx {
        /// register holding the value to store
        rs: Reg,
        /// frame slot index of the array base
        base: u32,
        /// register holding the element index
        idx: Reg,
        /// array length used for index wrapping
        len: u32,
    },
    /// Three-address ALU: `rd ← ra <op> rb` (RISC form)
    Alu3(AluOp, Reg, Reg, Reg),
    /// Two-address ALU: `rd ← rd <op> rs` (CISC form)
    Alu2(AluOp, Reg, Reg),
    /// Two-address ALU with memory operand: `rd ← rd <op> mem` (x86 only)
    Alu2Mem(AluOp, Reg, Mem),
    /// Unary ALU: `rd ← <op> rs`
    UnAlu(UnAluOp, Reg, Reg),
    /// `rd ← (ra <cmp> rb) ? 1 : 0`
    SetCc(CmpOp, Reg, Reg, Reg),
    /// Conditional select: `rd ← rc != 0 ? ra : rb` (ARM only)
    CSel {
        /// destination
        rd: Reg,
        /// condition register
        rc: Reg,
        /// value when the condition is nonzero
        ra: Reg,
        /// value when the condition is zero
        rb: Reg,
    },
    /// Branch to instruction `target` when `rc != 0`.
    Brnz(Reg, u32),
    /// Unconditional branch to instruction `target`.
    Jmp(u32),
    /// Push a register onto the outgoing-argument stack.
    Push(Reg),
    /// Call symbol `sym` with `argc` arguments.
    Call {
        /// symbol-table index of the callee
        sym: u32,
        /// number of arguments passed
        argc: u8,
    },
    /// Return; the return value is in register 0.
    Ret,
    /// No operation (alignment/padding).
    Nop,
}

impl MInst {
    /// True for instructions that transfer control.
    pub fn is_branch(&self) -> bool {
        matches!(self, MInst::Brnz(_, _) | MInst::Jmp(_) | MInst::Ret)
    }

    /// The branch target, if this is a jump or conditional branch.
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            MInst::Brnz(_, t) | MInst::Jmp(t) => Some(*t),
            _ => None,
        }
    }

    /// True for call instructions.
    pub fn is_call(&self) -> bool {
        matches!(self, MInst::Call { .. })
    }

    /// True for ALU instructions (arithmetic class, used by ACFG features).
    pub fn is_arith(&self) -> bool {
        matches!(
            self,
            MInst::Alu3(_, _, _, _)
                | MInst::Alu2(_, _, _)
                | MInst::Alu2Mem(_, _, _)
                | MInst::UnAlu(_, _, _)
                | MInst::SetCc(_, _, _, _)
        )
    }
}

/// Target instruction set architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Stack-argument CISC with memory-operand ALU; variable-width encoding.
    X86,
    /// Register-argument CISC (two-address); variable-width encoding with a
    /// prefix byte.
    X64,
    /// Register-argument RISC (three-address, load/store) with conditional
    /// select (if-conversion); fixed 8-byte encoding.
    Arm,
    /// Register-argument RISC without hardware remainder or negate; fixed
    /// 8-byte encoding with a rotated opcode map.
    Ppc,
}

impl Arch {
    /// All supported architectures.
    pub const ALL: [Arch; 4] = [Arch::X86, Arch::X64, Arch::Arm, Arch::Ppc];

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            Arch::X86 => "x86",
            Arch::X64 => "x64",
            Arch::Arm => "arm",
            Arch::Ppc => "ppc",
        }
    }

    /// Parses a display name back to an `Arch`.
    pub fn from_name(name: &str) -> Option<Arch> {
        Arch::ALL.iter().copied().find(|a| a.name() == name)
    }

    /// Number of general-purpose registers.
    pub fn reg_count(self) -> u8 {
        match self {
            Arch::X86 => 8,
            Arch::X64 => 16,
            Arch::Arm => 16,
            Arch::Ppc => 32,
        }
    }

    /// Registers used to pass leading call arguments (empty ⇒ all arguments
    /// travel on the stack).
    pub fn arg_regs(self) -> &'static [Reg] {
        const X64: [Reg; 6] = [Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6)];
        const ARM: [Reg; 4] = [Reg(1), Reg(2), Reg(3), Reg(4)];
        const PPC: [Reg; 8] = [
            Reg(3),
            Reg(4),
            Reg(5),
            Reg(6),
            Reg(7),
            Reg(8),
            Reg(9),
            Reg(10),
        ];
        match self {
            Arch::X86 => &[],
            Arch::X64 => &X64,
            Arch::Arm => &ARM,
            Arch::Ppc => &PPC,
        }
    }

    /// True for three-address (RISC) ALU architectures.
    pub fn is_three_address(self) -> bool {
        matches!(self, Arch::Arm | Arch::Ppc)
    }

    /// True when the ALU may take memory operands directly.
    pub fn has_mem_operands(self) -> bool {
        matches!(self, Arch::X86)
    }

    /// True when the ISA provides a conditional-select instruction, which
    /// enables if-conversion (the source of the paper's Fig. 2 basic-block
    /// collapse on ARM).
    pub fn has_csel(self) -> bool {
        matches!(self, Arch::Arm)
    }

    /// True when the ISA has a hardware remainder instruction.
    pub fn has_mod(self) -> bool {
        !matches!(self, Arch::Ppc)
    }

    /// True when the ISA has a hardware negate instruction.
    pub fn has_neg(self) -> bool {
        !matches!(self, Arch::Ppc)
    }

    /// Scratch registers available to the code generator for expression
    /// evaluation (disjoint from argument registers).
    pub fn scratch_regs(self) -> [Reg; 3] {
        match self {
            Arch::X86 => [Reg(0), Reg(1), Reg(2)],
            Arch::X64 => [Reg(0), Reg(7), Reg(8)],
            Arch::Arm => [Reg(0), Reg(5), Reg(6)],
            Arch::Ppc => [Reg(0), Reg(11), Reg(12)],
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_roundtrips_names() {
        for a in Arch::ALL {
            assert_eq!(Arch::from_name(a.name()), Some(a));
        }
        assert_eq!(Arch::from_name("mips"), None);
    }

    #[test]
    fn scratch_regs_disjoint_from_arg_regs() {
        for a in Arch::ALL {
            for s in a.scratch_regs() {
                assert!(
                    !a.arg_regs().contains(&s),
                    "{a}: scratch {s:?} collides with arg regs"
                );
                assert!(s.0 < a.reg_count());
            }
            for r in a.arg_regs() {
                assert!(r.0 < a.reg_count());
            }
        }
    }

    #[test]
    fn cmp_eval_matches_semantics() {
        assert_eq!(CmpOp::Lt.eval(-1, 0), 1);
        assert_eq!(CmpOp::Ge.eval(-1, 0), 0);
        assert_eq!(CmpOp::Eq.eval(5, 5), 1);
        assert_eq!(CmpOp::Ne.eval(5, 5), 0);
        assert_eq!(CmpOp::Le.eval(5, 5), 1);
        assert_eq!(CmpOp::Gt.eval(6, 5), 1);
    }

    #[test]
    fn minst_classification() {
        assert!(MInst::Jmp(0).is_branch());
        assert!(MInst::Ret.is_branch());
        assert!(!MInst::Nop.is_branch());
        assert!(MInst::Call { sym: 0, argc: 0 }.is_call());
        assert!(MInst::Alu2(AluOp::Add, Reg(0), Reg(1)).is_arith());
        assert_eq!(MInst::Brnz(Reg(0), 7).branch_target(), Some(7));
        assert_eq!(MInst::Ret.branch_target(), None);
    }

    #[test]
    fn arch_capability_matrix() {
        assert!(Arch::X86.has_mem_operands());
        assert!(!Arch::X64.has_mem_operands());
        assert!(Arch::Arm.has_csel());
        assert!(!Arch::Ppc.has_mod());
        assert!(!Arch::Ppc.has_neg());
        assert!(Arch::X86.arg_regs().is_empty());
        assert_eq!(Arch::Ppc.arg_regs().len(), 8);
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mem::Frame(s) => write!(f, "[fp+{s}]"),
            Mem::Global(s) => write!(f, "[g{s}]"),
            Mem::Arg(s) => write!(f, "[arg{s}]"),
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for MInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MInst::MovImm(r, v) => write!(f, "mov   {r}, #{v}"),
            MInst::Mov(d, s) => write!(f, "mov   {d}, {s}"),
            MInst::LoadStr(r, s) => write!(f, "lea   {r}, str{s}"),
            MInst::Load(r, m) => write!(f, "ld    {r}, {m}"),
            MInst::Store(m, r) => write!(f, "st    {m}, {r}"),
            MInst::LoadIdx { rd, base, idx, len } => {
                write!(f, "ldx   {rd}, [fp+{base} + {idx} % {len}]")
            }
            MInst::StoreIdx { rs, base, idx, len } => {
                write!(f, "stx   [fp+{base} + {idx} % {len}], {rs}")
            }
            MInst::Alu3(op, d, a, b) => {
                write!(f, "{:<5} {d}, {a}, {b}", format!("{op:?}").to_lowercase())
            }
            MInst::Alu2(op, d, s) => write!(f, "{:<5} {d}, {s}", format!("{op:?}").to_lowercase()),
            MInst::Alu2Mem(op, d, m) => {
                write!(f, "{:<5} {d}, {m}", format!("{op:?}").to_lowercase())
            }
            MInst::UnAlu(op, d, s) => write!(f, "{:<5} {d}, {s}", format!("{op:?}").to_lowercase()),
            MInst::SetCc(cc, d, a, b) => {
                write!(
                    f,
                    "set{:<3} {d}, {a}, {b}",
                    format!("{cc:?}").to_lowercase()
                )
            }
            MInst::CSel { rd, rc, ra, rb } => write!(f, "csel  {rd}, {rc} ? {ra} : {rb}"),
            MInst::Brnz(r, t) => write!(f, "brnz  {r}, @{t}"),
            MInst::Jmp(t) => write!(f, "jmp   @{t}"),
            MInst::Push(r) => write!(f, "push  {r}"),
            MInst::Call { sym, argc } => write!(f, "call  sym{sym} ({argc} args)"),
            MInst::Ret => write!(f, "ret"),
            MInst::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn instructions_render_uniquely() {
        let insts = [
            MInst::MovImm(Reg(1), -7),
            MInst::Load(Reg(0), Mem::Frame(3)),
            MInst::Alu3(AluOp::Add, Reg(0), Reg(1), Reg(2)),
            MInst::Brnz(Reg(0), 12),
            MInst::Call { sym: 2, argc: 3 },
            MInst::Ret,
        ];
        let rendered: Vec<String> = insts.iter().map(|i| i.to_string()).collect();
        for (i, a) in rendered.iter().enumerate() {
            assert!(!a.is_empty());
            for b in rendered.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        assert!(rendered[0].contains("#-7"));
        assert!(rendered[3].contains("@12"));
    }
}
