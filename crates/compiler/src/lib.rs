//! `asteria-compiler` — a cross-compiling toolchain for four synthetic ISAs.
//!
//! This crate is the reproduction's substitute for the paper's gated
//! gcc/buildroot toolchain. It compiles MiniC programs to self-contained
//! [`Binary`] images for four architectures whose differences mirror the
//! axes the paper's evaluation spans:
//!
//! | ISA | args | ALU | special |
//! |-----|------|-----|---------|
//! | x86 | stack (pushed) | two-address, memory operands | variable-width encoding |
//! | x64 | 6 registers | two-address | prefixed variable-width encoding |
//! | ARM | 4 registers | three-address | conditional select → if-conversion |
//! | PPC | 8 registers | three-address | no `%`/negate (expanded); big-endian fixed-width |
//!
//! The same source therefore yields binaries with different instruction
//! counts, basic-block structure (ARM's if-conversion reproduces the
//! paper's Fig. 2 block collapse) and byte-level encodings — while the
//! [`Vm`] proves all of them compute the same function as the MiniC
//! reference interpreter.
//!
//! # Examples
//!
//! ```
//! use asteria_compiler::{compile_program, Arch, Vm};
//!
//! let program = asteria_lang::parse(
//!     "int clamp(int x, int hi) { if (x > hi) { return hi; } return x; }",
//! )?;
//! for arch in Arch::ALL {
//!     let binary = compile_program(&program, arch)?;
//!     let sym = binary.symbol_index("clamp").unwrap();
//!     assert_eq!(Vm::new(&binary).call(sym, &[9, 5])?, 5);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
pub mod compile;
pub mod encode;
pub mod ir;
pub mod isa;
pub mod lower;
pub mod opt;
pub mod sbf;
pub mod vm;

pub use codegen::{
    block_boundaries, codegen_function, codegen_function_with, expand_missing_ops, if_convert,
    CodegenOptions, MachFunction,
};
pub use compile::{compile_program, compile_program_with, CompileError, OptLevel};
pub use encode::{decode_function, encode_function, DecodeError, EncodeError};
pub use ir::{IrFunction, IrProgram};
pub use isa::{AluOp, Arch, CmpOp, MInst, Mem, Reg, UnAluOp};
pub use lower::{lower_program, LowerError};
pub use opt::{optimize_function, optimize_program};
pub use sbf::{Binary, Symbol, SymbolKind};
pub use vm::{Vm, VmError};
