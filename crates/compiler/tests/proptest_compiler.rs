//! Property-based tests for the compiler: arbitrary instruction streams
//! must round-trip through every architecture's encoding, and arbitrary
//! straight-line programs must agree between the VM and the interpreter.

use proptest::prelude::*;

use asteria_compiler::{
    compile_program, decode_function, encode_function, AluOp, Arch, CmpOp, MInst, Mem, Reg, Vm,
};
use asteria_lang::{parse, Interp};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..8).prop_map(Reg)
}

fn arb_mem() -> impl Strategy<Value = Mem> {
    prop_oneof![
        (0u32..64).prop_map(Mem::Frame),
        (0u32..8).prop_map(Mem::Global),
        (0u32..4).prop_map(Mem::Arg),
    ]
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    proptest::sample::select(AluOp::ALL.to_vec())
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    proptest::sample::select(CmpOp::ALL.to_vec())
}

/// Non-branching instructions (branch targets need fixups, tested via the
/// compiler path).
fn arb_inst() -> impl Strategy<Value = MInst> {
    prop_oneof![
        (arb_reg(), -1_000_000i64..1_000_000).prop_map(|(r, v)| MInst::MovImm(r, v)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| MInst::Mov(a, b)),
        (arb_reg(), 0u32..16).prop_map(|(r, s)| MInst::LoadStr(r, s)),
        (arb_reg(), arb_mem()).prop_map(|(r, m)| MInst::Load(r, m)),
        (arb_mem(), arb_reg()).prop_map(|(m, r)| MInst::Store(m, r)),
        (arb_alu(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, d, a, b)| MInst::Alu3(op, d, a, b)),
        (arb_alu(), arb_reg(), arb_reg()).prop_map(|(op, d, s)| MInst::Alu2(op, d, s)),
        (arb_alu(), arb_reg(), arb_mem()).prop_map(|(op, d, m)| MInst::Alu2Mem(op, d, m)),
        (arb_cmp(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(cc, d, a, b)| MInst::SetCc(cc, d, a, b)),
        (arb_reg(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rc, ra, rb)| MInst::CSel {
            rd,
            rc,
            ra,
            rb
        }),
        arb_reg().prop_map(MInst::Push),
        (0u32..32, 0u8..6).prop_map(|(sym, argc)| MInst::Call { sym, argc }),
        (arb_reg(), 0u32..200, arb_reg(), 1u32..64)
            .prop_map(|(rd, base, idx, len)| { MInst::LoadIdx { rd, base, idx, len } }),
        Just(MInst::Ret),
        Just(MInst::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every encoding decodes back to exactly the encoded stream.
    #[test]
    fn encode_decode_roundtrip(insts in proptest::collection::vec(arb_inst(), 1..40)) {
        for arch in Arch::ALL {
            let bytes = encode_function(&insts, arch)
                .unwrap_or_else(|e| panic!("{arch}: encode failed: {e}"));
            let decoded = decode_function(&bytes, arch)
                .unwrap_or_else(|e| panic!("{arch}: decode failed: {e}"));
            prop_assert_eq!(&decoded, &insts, "{} roundtrip mismatch", arch);
        }
    }

    /// Arbitrary arithmetic expressions evaluate identically in the
    /// interpreter and on every ISA's VM.
    #[test]
    fn expression_semantics_match_interpreter(
        ops in proptest::collection::vec((0usize..10, -9i64..9), 1..12),
        a in -100i64..100,
        b in -100i64..100,
    ) {
        // Build a straight-line function from the op list.
        let mut body = String::from("int acc = a;\n");
        for (op, k) in &ops {
            let sym = ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"][*op];
            // Shift amounts must stay small and non-negative.
            let operand = if *op >= 8 { (k.unsigned_abs() % 8) as i64 } else { *k };
            body.push_str(&format!("acc = (acc {sym} {operand}) + b;\n"));
        }
        body.push_str("return acc;\n");
        let src = format!("int f(int a, int b) {{ {body} }}");
        let program = parse(&src).unwrap();
        let expected = Interp::new(&program).call("f", &[a, b]).unwrap();
        for arch in Arch::ALL {
            let bin = compile_program(&program, arch).unwrap();
            let got = Vm::new(&bin).call(0, &[a, b]).unwrap();
            prop_assert_eq!(got, expected, "{} diverged", arch);
        }
    }
}
