//! Differential testing: for every architecture, the compiled binary run
//! under the VM must compute exactly what the MiniC reference interpreter
//! computes. This is the semantic foundation of the whole reproduction —
//! it guarantees that homologous cross-architecture functions really are
//! semantically equivalent, which is the premise of the similarity task.

use asteria_compiler::{compile_program, Arch, Vm};
use asteria_lang::{parse, Interp};

/// Runs `func(args)` through the interpreter and through the VM on every
/// architecture, asserting agreement.
fn check(src: &str, func: &str, arg_sets: &[Vec<i64>]) {
    let program = parse(src).expect("parse");
    for args in arg_sets {
        let expected = Interp::new(&program).call(func, args).expect("interp");
        for arch in Arch::ALL {
            let binary = compile_program(&program, arch).expect("compile");
            let sym = binary.symbol_index(func).expect("symbol");
            let got = Vm::new(&binary).call(sym, args).expect("vm");
            assert_eq!(
                got, expected,
                "{func}({args:?}) diverged on {arch}: vm={got}, interp={expected}\nsource:\n{src}"
            );
        }
    }
}

fn grid1() -> Vec<Vec<i64>> {
    [
        -7i64,
        -1,
        0,
        1,
        2,
        3,
        10,
        63,
        64,
        100,
        -1000,
        i32::MAX as i64,
    ]
    .iter()
    .map(|a| vec![*a])
    .collect()
}

fn grid2() -> Vec<Vec<i64>> {
    let vals = [-5i64, -1, 0, 1, 2, 7, 100];
    let mut out = Vec::new();
    for a in vals {
        for b in vals {
            out.push(vec![a, b]);
        }
    }
    out
}

#[test]
fn arithmetic_kitchen_sink() {
    check(
        "int f(int a, int b) { return (a + b) * (a - b) / 3 + (a & b) - (a | b) ^ (a << 2) \
         + (b >> 1) + a % 5; }",
        "f",
        &grid2(),
    );
}

#[test]
fn division_and_mod_by_zero_paths() {
    check(
        "int f(int a, int b) { return a / b + a % b; }",
        "f",
        &grid2(),
    );
}

#[test]
fn unary_operators() {
    check("int f(int a) { return -a + !a + ~a + !!a; }", "f", &grid1());
}

#[test]
fn comparisons_materialized_as_values() {
    check(
        "int f(int a, int b) { return (a < b) + (a <= b) * 2 + (a > b) * 4 + (a >= b) * 8 \
         + (a == b) * 16 + (a != b) * 32; }",
        "f",
        &grid2(),
    );
}

#[test]
fn if_else_chains() {
    check(
        "int f(int a) { if (a > 100) { return 3; } else if (a > 10) { return 2; } \
         else if (a > 0) { return 1; } else { return 0; } }",
        "f",
        &grid1(),
    );
}

#[test]
fn if_conversion_candidates_preserve_semantics() {
    // Small diamonds and triangles — exactly what ARM if-converts.
    check(
        "int f(int a, int b) { int x = 0; if (a > b) { x = a; } else { x = b; } \
         int y = 5; if (a == b) { y = 9; } return x * 100 + y; }",
        "f",
        &grid2(),
    );
}

#[test]
fn loops_while_for_dowhile() {
    check(
        "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } \
         int j = n; while (j > 0) { s += 2; j--; } \
         int k = 0; do { k++; } while (k < n); return s + k; }",
        "f",
        &[vec![0], vec![1], vec![5], vec![17]],
    );
}

#[test]
fn break_continue_nested() {
    check(
        "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { \
         if (i % 3 == 0) { continue; } if (i > 20) { break; } \
         for (int j = 0; j < i; j++) { if (j == 4) { break; } s++; } } return s; }",
        "f",
        &[vec![0], vec![5], vec![10], vec![30]],
    );
}

#[test]
fn switch_dispatch() {
    check(
        "int f(int x) { int r = 0; switch (x % 4) { case 0: r = 10; break; case 1: r = 20; \
         break; case 2: r = 30; break; default: r = 99; } return r; }",
        "f",
        &grid1(),
    );
}

#[test]
fn switch_without_default() {
    check(
        "int f(int x) { int r = 7; switch (x) { case 1: r = 1; case 5: r = 5; } return r; }",
        "f",
        &grid1(),
    );
}

#[test]
fn short_circuit_logic() {
    check(
        "int g = 0; int bump(int v) { g += v; return v; } \
         int f(int a, int b) { int r = (a > 0 && bump(b) > 0) + (a < 0 || bump(1) > 0); \
         return r * 1000 + g; }",
        "f",
        &grid2(),
    );
}

#[test]
fn arrays_and_wrapping_indices() {
    check(
        "int f(int n) { int a[8]; for (int i = 0; i < 20; i++) { a[i] = i * n; } \
         int s = 0; for (int i = -8; i < 16; i++) { s += a[i]; } return s; }",
        "f",
        &grid1(),
    );
}

#[test]
fn globals_shared_between_functions() {
    check(
        "int counter = 100; int tick() { counter += 1; return counter; } \
         int f(int n) { for (int i = 0; i < n; i++) { tick(); } return counter; }",
        "f",
        &[vec![0], vec![3], vec![7]],
    );
}

#[test]
fn recursion_fibonacci_and_gcd() {
    check(
        "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } \
         int gcd(int a, int b) { if (b == 0) { return a; } return gcd(b, a % b); } \
         int f(int n) { return fib(n % 12) * 1000 + gcd(n, 36); }",
        "f",
        &[vec![1], vec![8], vec![11], vec![48]],
    );
}

#[test]
fn many_arguments_cross_convention() {
    check(
        "int h(int a, int b, int c, int d, int e, int f1, int g1, int h1, int i, int j) \
         { return a - b + c - d + e - f1 + g1 - h1 + i - j; } \
         int f(int x) { return h(x, x+1, x+2, x+3, x+4, x+5, x+6, x+7, x+8, x+9); }",
        "f",
        &grid1(),
    );
}

#[test]
fn external_calls_and_strings() {
    check(
        r#"int f(int a) { log_msg("checkpoint", a); return ext_validate(a, a * 2) + 1; }"#,
        "f",
        &grid1(),
    );
}

#[test]
fn compound_assignments_and_incdec() {
    check(
        "int f(int a) { int x = a; x += 3; x *= 2; x -= 1; x /= 3; x &= 255; x |= 16; \
         x ^= 5; int y = x++; int z = --x; return x * 10000 + y * 100 + z; }",
        "f",
        &grid1(),
    );
}

#[test]
fn stress_mixed_program() {
    check(
        "int table = 0; \
         int hash(int x) { int h = 17; for (int i = 0; i < 4; i++) { \
         h = h * 31 + ((x >> (i * 8)) & 255); } return h; } \
         int classify(int v) { switch (v % 3) { case 0: return 1; case 1: return 2; \
         default: return 3; } } \
         int f(int n) { int acc = 0; int buf[16]; \
         for (int i = 0; i < n % 32; i++) { buf[i] = hash(i * n); } \
         for (int i = 0; i < n % 32; i++) { \
         if (buf[i] % 2 == 0 && i % 3 != 0) { acc += classify(buf[i]); } \
         else { acc -= 1; } } \
         table = acc; return table; }",
        "f",
        &[vec![0], vec![5], vec![16], vec![31], vec![100]],
    );
}

#[test]
fn decode_of_all_compiled_functions_roundtrips() {
    // Every compiled function must decode back to exactly the instructions
    // that were encoded (tested indirectly via re-encoding).
    let src = "int a(int x) { return x * 2; } \
               int b(int x, int y) { if (x > y) { return a(x); } return a(y); } \
               int c(int n) { int s = 0; for (int i = 0; i < n; i++) { s += b(i, n); } return s; }";
    let program = parse(src).unwrap();
    for arch in Arch::ALL {
        let binary = compile_program(&program, arch).unwrap();
        for idx in binary.function_indices() {
            let code = &binary.symbols[idx].code;
            let insts = asteria_compiler::decode_function(code, arch).unwrap();
            let re = asteria_compiler::encode_function(&insts, arch).unwrap();
            assert_eq!(&re, code, "{arch}: re-encoding changed bytes");
        }
    }
}

#[test]
fn o0_binaries_also_match_reference_semantics() {
    use asteria_compiler::{compile_program_with, OptLevel};
    let src = "int f(int n) { int s = 0; for (int i = 0; i < n % 20; i++) { \
               if (i % 2 == 0 && s < 1000) { s += i * 3; } else { s -= 1; } } \
               int x = 0; if (n > 5) { x = n; } else { x = -n; } return s * 100 + x % 7; }";
    let program = parse(src).expect("parse");
    for args in [0i64, 3, 7, 19, -4] {
        let expected = Interp::new(&program).call("f", &[args]).expect("interp");
        for arch in Arch::ALL {
            for opt in [OptLevel::O0, OptLevel::O1] {
                let bin = compile_program_with(&program, arch, opt).expect("compile");
                let got = Vm::new(&bin).call(0, &[args]).expect("vm");
                assert_eq!(got, expected, "{arch} {opt:?} diverged on f({args})");
            }
        }
    }
}

#[test]
fn o0_skips_arch_character_passes() {
    use asteria_compiler::{compile_program_with, decode_function, MInst, OptLevel};
    // A diamond that ARM if-converts at O1 but not at O0.
    let src = "int f(int a, int b) { int x = 0; if (a > b) { x = a; } else { x = b; } \
               return x * 2; }";
    let program = parse(src).expect("parse");
    let o1 = compile_program_with(&program, Arch::Arm, OptLevel::O1).unwrap();
    let o0 = compile_program_with(&program, Arch::Arm, OptLevel::O0).unwrap();
    let has_csel = |b: &asteria_compiler::Binary| {
        decode_function(&b.symbols[0].code, Arch::Arm)
            .unwrap()
            .iter()
            .any(|i| matches!(i, MInst::CSel { .. }))
    };
    assert!(has_csel(&o1), "O1 must if-convert");
    assert!(!has_csel(&o0), "O0 must not if-convert");
    // O0 keeps the branchy shape: more basic blocks than the O1 build.
    let blocks = |b: &asteria_compiler::Binary| {
        let insts = decode_function(&b.symbols[0].code, Arch::Arm).unwrap();
        asteria_compiler::block_boundaries(&insts).len()
    };
    assert!(
        blocks(&o0) > blocks(&o1),
        "o0={} o1={}",
        blocks(&o0),
        blocks(&o1)
    );
}

#[test]
fn extended_compound_assignments() {
    check(
        "int f(int a) { int x = a; x %= 7; x <<= 2; x >>= 1; return x; }",
        "f",
        &grid1(),
    );
}
