//! Determinism of the execution layer: the parallel offline index build
//! and online ranking must be **bit-identical** to the serial reference
//! at every thread count — same function order, same scores, same
//! extraction reports. This is the non-negotiable invariant of the
//! `asteria-exec` fan-out.

use asteria::compiler::Arch;
use asteria::core::{AsteriaModel, ModelConfig};
use asteria::vulnsearch::{
    build_firmware_corpus, build_search_index_cached_threads, build_search_index_threads,
    encode_query, run_search_threads, search_threads, vulnerability_library, FirmwareConfig,
    IndexCache, SearchIndex,
};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn fixture() -> (AsteriaModel, Vec<asteria::vulnsearch::FirmwareImage>) {
    let model = AsteriaModel::new(ModelConfig {
        hidden_dim: 12,
        embed_dim: 8,
        ..Default::default()
    });
    let firmware = build_firmware_corpus(
        &FirmwareConfig {
            images: 4,
            ..Default::default()
        },
        &vulnerability_library(),
    );
    (model, firmware)
}

/// Bit-level index equality: float vectors compared by bits, not by ≈.
fn assert_index_identical(serial: &SearchIndex, parallel: &SearchIndex, threads: usize) {
    assert_eq!(
        serial.extraction, parallel.extraction,
        "extraction report diverged at {threads} threads"
    );
    assert_eq!(
        serial.functions.len(),
        parallel.functions.len(),
        "function count diverged at {threads} threads"
    );
    for (i, (a, b)) in serial.functions.iter().zip(&parallel.functions).enumerate() {
        assert_eq!((a.image, a.binary), (b.image, b.binary), "order @{i}");
        assert_eq!(a.name, b.name, "name @{i}");
        assert_eq!(a.ground_truth, b.ground_truth, "ground truth @{i}");
        assert_eq!(
            a.encoding.callee_count, b.encoding.callee_count,
            "callee count @{i}"
        );
        let bits_a: Vec<u32> = a.encoding.vector.iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u32> = b.encoding.vector.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "encoding bits @{i} at {threads} threads");
    }
}

#[test]
fn index_build_is_identical_at_every_thread_count() {
    let (model, firmware) = fixture();
    let serial = build_search_index_threads(&model, &firmware, 1);
    assert!(!serial.is_empty());
    for threads in THREAD_COUNTS {
        let parallel = build_search_index_threads(&model, &firmware, threads);
        assert_index_identical(&serial, &parallel, threads);
    }
}

#[test]
fn warm_cached_build_is_identical_to_cold_at_every_thread_count() {
    let (model, firmware) = fixture();
    let mut cache = IndexCache::default();
    let (cold, cold_stats) = build_search_index_cached_threads(&model, &firmware, &mut cache, 1);
    assert_eq!(cold_stats.hits, 0, "fresh cache cannot produce hits");
    assert!(cold_stats.misses > 0);

    // Persist and reload the cache exactly as `asteria index build` does
    // between runs: the warm path must survive the disk round-trip.
    let mut bytes = Vec::new();
    cache.save(&mut bytes).expect("save");
    let reloaded = IndexCache::load(bytes.as_slice()).expect("load");
    assert_eq!(reloaded, cache);

    for threads in THREAD_COUNTS {
        let mut warm_cache = reloaded.clone();
        let (warm, warm_stats) =
            build_search_index_cached_threads(&model, &firmware, &mut warm_cache, threads);
        assert_eq!(
            warm_stats.misses, 0,
            "warm build re-encoded a binary at {threads} threads"
        );
        assert_eq!(warm_stats.hits, cold_stats.misses);
        assert_eq!(warm_stats.evicted, 0);
        assert_index_identical(&cold, &warm, threads);
    }

    // The uncached builder must agree bit-for-bit with the cached path.
    let uncached = build_search_index_threads(&model, &firmware, 1);
    assert_index_identical(&uncached, &cold, 1);
}

#[test]
fn search_ranking_is_identical_at_every_thread_count() {
    let (model, firmware) = fixture();
    let index = build_search_index_threads(&model, &firmware, 1);
    let library = vulnerability_library();
    for entry in &library {
        let query = encode_query(&model, entry, Arch::X86).expect("query encodes");
        let serial = search_threads(&model, &index, &query, 1);
        for threads in THREAD_COUNTS {
            let parallel = search_threads(&model, &index, &query, threads);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.function, b.function, "{}: order diverged", entry.id);
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "{}: score bits diverged at {threads} threads",
                    entry.id
                );
            }
        }
    }
}

#[test]
fn run_search_results_are_identical_at_every_thread_count() {
    let (model, firmware) = fixture();
    let index = build_search_index_threads(&model, &firmware, 1);
    let library = vulnerability_library();
    let serial = run_search_threads(&model, &index, &firmware, &library, 0.5, Arch::X86, 1)
        .expect("queries encode");
    for threads in THREAD_COUNTS {
        let parallel =
            run_search_threads(&model, &index, &firmware, &library, 0.5, Arch::X86, threads)
                .expect("queries encode");
        assert_eq!(serial, parallel, "results diverged at {threads} threads");
    }
}

#[test]
fn corrupted_corpus_reports_are_identical_in_parallel() {
    // Extraction *reports* (skip taxonomy) must also merge
    // deterministically when some binaries are corrupt.
    let (model, mut firmware) = fixture();
    for img in &mut firmware {
        if let Some(binary) = img.binaries.first_mut() {
            if let Some(sym) = binary.symbols.first_mut() {
                sym.code = vec![0xff; 7];
            }
        }
    }
    let serial = build_search_index_threads(&model, &firmware, 1);
    assert!(serial.extraction.skipped > 0);
    for threads in THREAD_COUNTS {
        let parallel = build_search_index_threads(&model, &firmware, threads);
        assert_index_identical(&serial, &parallel, threads);
    }
}
