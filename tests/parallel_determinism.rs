//! Determinism of the execution layer: the parallel offline index build
//! and online ranking must be **bit-identical** to the serial reference
//! at every thread count — same function order, same scores, same
//! extraction reports. This is the non-negotiable invariant of the
//! `asteria-exec` fan-out.

use std::sync::Arc;

use asteria::compiler::Arch;
use asteria::core::{AsteriaModel, ModelConfig};
use asteria::vulnsearch::{
    build_firmware_corpus, vulnerability_library, FirmwareConfig, IndexBuilder, IndexCache,
    SearchIndex, SearchSession,
};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn fixture() -> (AsteriaModel, Vec<asteria::vulnsearch::FirmwareImage>) {
    let model = AsteriaModel::new(ModelConfig {
        hidden_dim: 12,
        embed_dim: 8,
        ..Default::default()
    });
    let firmware = build_firmware_corpus(
        &FirmwareConfig {
            images: 4,
            ..Default::default()
        },
        &vulnerability_library(),
    );
    (model, firmware)
}

fn build(model: &AsteriaModel, firmware: &[asteria::vulnsearch::FirmwareImage]) -> SearchIndex {
    build_threads(model, firmware, 1)
}

fn build_threads(
    model: &AsteriaModel,
    firmware: &[asteria::vulnsearch::FirmwareImage],
    threads: usize,
) -> SearchIndex {
    IndexBuilder::new(model)
        .threads(threads)
        .build(firmware)
        .expect("in-memory build cannot fail")
        .index
}

/// Bit-level index equality: float vectors compared by bits, not by ≈.
fn assert_index_identical(serial: &SearchIndex, parallel: &SearchIndex, threads: usize) {
    assert_eq!(
        serial.extraction, parallel.extraction,
        "extraction report diverged at {threads} threads"
    );
    assert_eq!(
        serial.functions.len(),
        parallel.functions.len(),
        "function count diverged at {threads} threads"
    );
    for (i, (a, b)) in serial.functions.iter().zip(&parallel.functions).enumerate() {
        assert_eq!((a.image, a.binary), (b.image, b.binary), "order @{i}");
        assert_eq!(a.name, b.name, "name @{i}");
        assert_eq!(a.ground_truth, b.ground_truth, "ground truth @{i}");
        assert_eq!(
            a.encoding.callee_count, b.encoding.callee_count,
            "callee count @{i}"
        );
        let bits_a: Vec<u32> = a.encoding.vector.iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u32> = b.encoding.vector.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "encoding bits @{i} at {threads} threads");
    }
}

#[test]
fn index_build_is_identical_at_every_thread_count() {
    let (model, firmware) = fixture();
    let serial = build(&model, &firmware);
    assert!(!serial.is_empty());
    for threads in THREAD_COUNTS {
        let parallel = build_threads(&model, &firmware, threads);
        assert_index_identical(&serial, &parallel, threads);
    }
}

#[test]
fn warm_cached_build_is_identical_to_cold_at_every_thread_count() {
    let (model, firmware) = fixture();
    let mut cache = IndexCache::default();
    let (cold, cold_stats) = IndexBuilder::new(&model)
        .threads(1)
        .build_into(&firmware, &mut cache);
    assert_eq!(cold_stats.hits, 0, "fresh cache cannot produce hits");
    assert!(cold_stats.misses > 0);

    // Persist and reload the cache exactly as `asteria index build` does
    // between runs: the warm path must survive the disk round-trip.
    let mut bytes = Vec::new();
    cache.save(&mut bytes).expect("save");
    let reloaded = IndexCache::load(bytes.as_slice()).expect("load");
    assert_eq!(reloaded, cache);

    for threads in THREAD_COUNTS {
        let mut warm_cache = reloaded.clone();
        let (warm, warm_stats) = IndexBuilder::new(&model)
            .threads(threads)
            .build_into(&firmware, &mut warm_cache);
        assert_eq!(
            warm_stats.misses, 0,
            "warm build re-encoded a binary at {threads} threads"
        );
        assert_eq!(warm_stats.hits, cold_stats.misses);
        assert_eq!(warm_stats.evicted, 0);
        assert_index_identical(&cold, &warm, threads);
    }

    // The plain builder must agree bit-for-bit with the cached path.
    let uncached = build(&model, &firmware);
    assert_index_identical(&uncached, &cold, 1);
}

#[test]
fn search_ranking_is_identical_at_every_thread_count() {
    let (model, firmware) = fixture();
    let index = build(&model, &firmware);
    let library = vulnerability_library();
    let mut session = SearchSession::new(Arc::new(model), index).threads(1);
    for entry in &library {
        let query = session.encode_cve(entry, Arch::X86).expect("query encodes");
        session = session.threads(1); // serial reference for this entry
        let serial = session.rank(&query);
        for threads in THREAD_COUNTS {
            session = session.threads(threads);
            let parallel = session.rank(&query);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.function, b.function, "{}: order diverged", entry.id);
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "{}: score bits diverged at {threads} threads",
                    entry.id
                );
            }
        }
    }
}

#[test]
fn run_search_results_are_identical_at_every_thread_count() {
    let (model, firmware) = fixture();
    let index = build(&model, &firmware);
    let library = vulnerability_library();
    let mut session = SearchSession::new(model, index).threads(1);
    let serial = session
        .run(&firmware, &library, 0.5, Arch::X86)
        .expect("queries encode");
    for threads in THREAD_COUNTS {
        session = session.threads(threads);
        let parallel = session
            .run(&firmware, &library, 0.5, Arch::X86)
            .expect("queries encode");
        assert_eq!(serial, parallel, "results diverged at {threads} threads");
    }
}

#[test]
fn query_batch_is_identical_at_every_thread_count() {
    // The server's batch path must hold the same invariant: a batch
    // answered at N threads is bit-identical to the serial batch.
    use asteria::vulnsearch::FunctionQuery;
    let (model, firmware) = fixture();
    let index = build(&model, &firmware);
    let library = vulnerability_library();
    let queries: Vec<FunctionQuery> = library
        .iter()
        .flat_map(|e| {
            // Duplicates exercise the in-batch dedup without changing
            // the expected per-query answers.
            [
                FunctionQuery::for_cve(e, Arch::X86),
                FunctionQuery::for_cve(e, Arch::X86),
            ]
        })
        .collect();
    let mut session = SearchSession::new(model, index).threads(1);
    let serial = session.query_batch(&queries);
    for threads in THREAD_COUNTS {
        session = session.threads(threads);
        let parallel = session.query_batch(&queries);
        assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.total_ranked, b.total_ranked, "query {i}");
                    assert_eq!(a.hits.len(), b.hits.len(), "query {i}");
                    for (ha, hb) in a.hits.iter().zip(&b.hits) {
                        assert_eq!(ha.function, hb.function, "query {i}: order diverged");
                        assert_eq!(
                            ha.score.to_bits(),
                            hb.score.to_bits(),
                            "query {i}: score bits diverged at {threads} threads"
                        );
                    }
                }
                (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "query {i}"),
                _ => panic!("query {i}: ok/err diverged at {threads} threads"),
            }
        }
    }
}

#[test]
fn corrupted_corpus_reports_are_identical_in_parallel() {
    // Extraction *reports* (skip taxonomy) must also merge
    // deterministically when some binaries are corrupt.
    let (model, mut firmware) = fixture();
    for img in &mut firmware {
        if let Some(binary) = img.binaries.first_mut() {
            if let Some(sym) = binary.symbols.first_mut() {
                sym.code = vec![0xff; 7];
            }
        }
    }
    let serial = build(&model, &firmware);
    assert!(serial.extraction.skipped > 0);
    for threads in THREAD_COUNTS {
        let parallel = build_threads(&model, &firmware, threads);
        assert_index_identical(&serial, &parallel, threads);
    }
}
