//! Fault injection: the whole extraction pipeline under seeded
//! corruption.
//!
//! The paper's firmware dataset is exactly the kind of input that breaks
//! naive tooling — truncated sections, bit-rot, hostile bytes. This
//! harness drives ≥ 1,000 deterministic corruptions per ISA through
//! `Binary::load`, all four disassemblers, and full decompilation, and
//! requires every failure to surface as a typed error. Any panic aborts
//! the test with the seed that produced it, which is a one-line repro.

use std::panic::{catch_unwind, AssertUnwindSafe};

use asteria::compiler::{compile_program, decode_function, Arch, Binary};
use asteria::core::{extract_binary_resilient, AsteriaModel, ModelConfig, DEFAULT_INLINE_BETA};
use asteria::corrupt::Corruptor;
use asteria::decompiler::{decompile_function_with, DecompileLimits};
use asteria::lang::parse;
use asteria::vulnsearch::{
    build_firmware_corpus, vulnerability_library, FirmwareConfig, IndexBuilder, IndexCache,
};

/// Seeded corruptions per ISA per harness (the issue's floor is 1,000).
const ROUNDS: u64 = 1000;

const SRC: &str = r#"
    int mix(int a, int b) { return (a * 31 + b) ^ (a >> 3); }
    int table_hash(int n) {
        int tab[8];
        for (int i = 0; i < 8; i++) { tab[i] = mix(i, n); }
        int h = 17;
        for (int i = 0; i < 8; i++) { h = mix(h, tab[i]); }
        return h;
    }
    int classify(int x) {
        switch (x % 4) {
        case 0: return table_hash(x);
        case 1: return mix(x, x);
        case 2: return 0 - x;
        default: return x;
        }
    }
    int drive(int n) {
        int acc = 0;
        int i = 0;
        while (i < n % 16) {
            acc += classify(i);
            if (acc > 100000) { break; }
            i++;
        }
        return acc;
    }
"#;

fn compiled(arch: Arch) -> Binary {
    let p = parse(SRC).expect("parse");
    compile_program(&p, arch).expect("compile")
}

/// Runs `f`, turning a panic into a test failure that names the seed.
fn no_panic<T>(what: &str, arch: Arch, seed: u64, f: impl FnOnce() -> T) -> T {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => v,
        Err(_) => panic!("{what} panicked on {arch} seed {seed}"),
    }
}

/// Corrupted code bytes through the disassembler: decode must return
/// `Ok` or a typed `DecodeError`, never panic.
#[test]
fn disassemblers_survive_corrupted_code() {
    for arch in Arch::ALL {
        let binary = compiled(arch);
        let codes: Vec<&[u8]> = binary
            .symbols
            .iter()
            .filter(|s| !s.code.is_empty())
            .map(|s| s.code.as_slice())
            .collect();
        assert!(!codes.is_empty());
        for seed in 0..ROUNDS {
            let mut c = Corruptor::new(seed ^ ((arch as u64) << 32));
            let code = codes[c.below(codes.len())];
            let (_, mutant) = c.corrupt(code);
            no_panic("decode", arch, seed, || {
                let _ = decode_function(&mutant, arch);
            });
        }
    }
}

/// Pure random byte streams — no structural relation to valid code.
#[test]
fn disassemblers_survive_random_streams() {
    for arch in Arch::ALL {
        for seed in 0..ROUNDS {
            let mut c = Corruptor::new(seed.wrapping_mul(0x10001) ^ arch as u64);
            let len = 1 + c.below(256);
            let stream = c.random_stream(len);
            no_panic("decode random stream", arch, seed, || {
                let _ = decode_function(&stream, arch);
            });
        }
    }
}

/// Corrupted function code through *full decompilation* under default
/// budgets: typed error or a (possibly nonsense) AST — never a panic,
/// hang, or runaway allocation.
#[test]
fn decompiler_survives_corrupted_functions() {
    let limits = DecompileLimits::default();
    for arch in Arch::ALL {
        let binary = compiled(arch);
        let funcs = binary.function_indices();
        for seed in 0..ROUNDS {
            let mut c = Corruptor::new(0xdec0 ^ seed ^ ((arch as u64) << 24));
            let sym = funcs[c.below(funcs.len())];
            let mut mutant = binary.clone();
            let (_, code) = c.corrupt(&mutant.symbols[sym].code);
            mutant.symbols[sym].code = code;
            no_panic("decompile", arch, seed, || {
                let _ = decompile_function_with(&mutant, sym, &limits);
            });
        }
    }
}

/// Corrupted container images through `Binary::load`; survivors continue
/// into resilient extraction. Covers header, length-field and truncation
/// attacks against the loader itself.
#[test]
fn loader_survives_corrupted_images() {
    for arch in Arch::ALL {
        let binary = compiled(arch);
        let mut image = Vec::new();
        binary.save(&mut image).expect("save");
        let mut loaded_ok = 0u32;
        for seed in 0..ROUNDS {
            let mut c = Corruptor::new(0x10ad ^ seed.wrapping_mul(31) ^ arch as u64);
            let (_, mutant) = c.corrupt(&image);
            let reloaded = no_panic("load", arch, seed, || Binary::load(mutant.as_slice()));
            if let Ok(b) = reloaded {
                loaded_ok += 1;
                // A structurally valid container with garbage inside must
                // still extract per-function, not abort.
                no_panic("resilient extraction", arch, seed, || {
                    let r = extract_binary_resilient(&b, DEFAULT_INLINE_BETA);
                    assert_eq!(r.report.extracted + r.report.skipped, r.report.total);
                });
            }
        }
        // Bit flips inside code sections leave the container parsable, so
        // a decent fraction must reach the extraction stage at all.
        assert!(loaded_ok > 0, "{arch}: no corrupted image ever loaded");
    }
}

/// The parallel offline index build under seeded corruption: with >1
/// worker, every corrupted function must still degrade to a counted
/// skip — zero panics — and the merged index must equal the serial one
/// exactly (same order, same reports).
#[test]
fn parallel_index_build_survives_corrupted_corpus() {
    let model = AsteriaModel::new(ModelConfig {
        hidden_dim: 12,
        embed_dim: 8,
        ..Default::default()
    });
    let library = vulnerability_library();
    for seed in 0..8u64 {
        let mut firmware = build_firmware_corpus(
            &FirmwareConfig {
                images: 3,
                seed: 1000 + seed,
                ..Default::default()
            },
            &library,
        );
        let mut c = Corruptor::new(0xf1ee7 ^ seed);
        for img in &mut firmware {
            for binary in &mut img.binaries {
                for sym in &mut binary.symbols {
                    // Corrupt roughly a third of all function bodies.
                    if !sym.code.is_empty() && c.below(3) == 0 {
                        let (_, code) = c.corrupt(&sym.code);
                        sym.code = code;
                    }
                }
            }
        }
        let serial = no_panic("serial index build", Arch::Arm, seed, || {
            IndexBuilder::new(&model)
                .threads(1)
                .build(&firmware)
                .expect("in-memory build cannot fail")
                .index
        });
        for threads in [2usize, 4] {
            let parallel = no_panic("parallel index build", Arch::Arm, seed, || {
                IndexBuilder::new(&model)
                    .threads(threads)
                    .build(&firmware)
                    .expect("in-memory build cannot fail")
                    .index
            });
            assert_eq!(
                serial.extraction, parallel.extraction,
                "seed {seed}: report diverged at {threads} threads"
            );
            assert_eq!(
                serial.functions, parallel.functions,
                "seed {seed}: index diverged at {threads} threads"
            );
        }
    }
}

/// The ASIX index-cache loader under seeded corruption: every mutation
/// of a real cache file must surface as a typed [`IndexError`] or load a
/// still-valid structure — never panic — and the pristine bytes must
/// keep loading back to the exact cache that was saved.
#[test]
fn index_cache_loader_survives_corrupted_files() {
    let model = AsteriaModel::new(ModelConfig {
        hidden_dim: 12,
        embed_dim: 8,
        ..Default::default()
    });
    let firmware = build_firmware_corpus(
        &FirmwareConfig {
            images: 2,
            ..Default::default()
        },
        &vulnerability_library(),
    );
    let mut cache = IndexCache::default();
    let _ = IndexBuilder::new(&model)
        .threads(2)
        .build_into(&firmware, &mut cache);
    assert!(!cache.is_empty(), "cold build must populate the cache");
    let mut pristine = Vec::new();
    cache.save(&mut pristine).expect("save");
    assert_eq!(
        IndexCache::load(pristine.as_slice()).expect("pristine bytes load"),
        cache
    );
    let mut rejected = 0u32;
    for seed in 0..ROUNDS {
        let mut c = Corruptor::new(0xa51c ^ seed.wrapping_mul(0x9e37));
        let (_, mutant) = c.corrupt(&pristine);
        let outcome = no_panic("index cache load", Arch::Arm, seed, || {
            IndexCache::load(mutant.as_slice())
        });
        if let Err(e) = outcome {
            // The typed error must render without panicking either.
            no_panic("index error display", Arch::Arm, seed, || e.to_string());
            rejected += 1;
        }
    }
    assert!(rejected > 0, "no corruption was ever detected");
}

/// End-to-end: a whole corpus where some binaries are corrupted still
/// produces a report with exact per-error accounting.
#[test]
fn resilient_extraction_accounts_for_every_function() {
    for arch in Arch::ALL {
        let mut binary = compiled(arch);
        let funcs = binary.function_indices();
        let mut c = Corruptor::new(0xacc7 + arch as u64);
        // Corrupt half the functions.
        for (i, &sym) in funcs.iter().enumerate() {
            if i % 2 == 0 {
                let (_, code) = c.corrupt(&binary.symbols[sym].code);
                binary.symbols[sym].code = code;
            }
        }
        let r = extract_binary_resilient(&binary, DEFAULT_INLINE_BETA);
        assert_eq!(r.report.total, funcs.len());
        assert_eq!(r.report.extracted + r.report.skipped, r.report.total);
        assert_eq!(r.outcomes.len(), funcs.len());
        // At least the untouched half still extracts.
        assert!(
            r.report.extracted >= funcs.len() / 2,
            "{arch}: {}",
            r.report
        );
    }
}
