//! Property tests for the ASIX on-disk index cache: randomly generated
//! caches must round-trip through `save`/`load` exactly (including
//! byte-identical re-serialization, since entries are written in sorted
//! fingerprint order), and arbitrary byte-level corruption of a valid
//! file must yield a typed `IndexError`, never a panic.

use asteria::core::ExtractionReport;
use asteria::vulnsearch::{CachedBinary, CachedFunction, IndexCache};
use proptest::prelude::*;

/// Deterministically expands a small integer seed into a cache with
/// `entries` binaries of varying shape. Floats come from bit patterns a
/// real encoder could produce (finite, spread across magnitudes).
fn cache_from_seed(seed: u64, entries: usize) -> IndexCache {
    let mut cache = IndexCache::new(seed.wrapping_mul(0x9e3779b97f4a7c15), !seed);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for e in 0..entries {
        let nfuncs = (next() % 4) as usize;
        let skipped = (next() % 3) as usize;
        let functions: Vec<CachedFunction> = (0..nfuncs)
            .map(|f| CachedFunction {
                name: format!("fn_{e}_{f}_{}", next() % 1000),
                callee_count: (next() % 17) as usize,
                vector: (0..(next() % 6) as usize)
                    .map(|_| (next() % 1_000_000) as f32 / 997.0 - 500.0)
                    .collect(),
            })
            .collect();
        let report = ExtractionReport {
            total: nfuncs + skipped,
            extracted: nfuncs,
            skipped,
            decode_errors: skipped,
            ..Default::default()
        };
        cache.insert(next(), CachedBinary { report, functions });
    }
    cache
}

fn saved(cache: &IndexCache) -> Vec<u8> {
    let mut buf = Vec::new();
    cache.save(&mut buf).expect("save");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// save → load → save is the identity on both the structure and the
    /// exact bytes.
    #[test]
    fn random_caches_roundtrip_exactly(
        seed in 0u64..1_000_000,
        entries in 0usize..8,
    ) {
        let cache = cache_from_seed(seed, entries);
        let bytes = saved(&cache);
        let loaded = IndexCache::load(bytes.as_slice()).expect("valid file loads");
        prop_assert_eq!(&loaded, &cache);
        prop_assert_eq!(saved(&loaded), bytes);
    }

    /// Any single-byte mutation of a valid file either still loads (the
    /// byte was unchanged or in a don't-care position — then a re-save
    /// must reproduce the mutated bytes) or fails with a typed error.
    /// Either way: no panic, ever.
    #[test]
    fn single_byte_corruption_never_panics(
        seed in 0u64..100_000,
        pos_seed in 0usize..1_000_000,
        value in 0u8..=255u8,
    ) {
        let cache = cache_from_seed(seed, 3);
        let mut bytes = saved(&cache);
        let pos = pos_seed % bytes.len();
        let original = bytes[pos];
        bytes[pos] = value;
        match IndexCache::load(bytes.as_slice()) {
            Err(e) => {
                // Typed rejection; the message must render.
                prop_assert!(!e.to_string().is_empty());
            }
            Ok(loaded) => {
                if value == original {
                    prop_assert_eq!(&loaded, &cache);
                } else {
                    // Mutation landed in a digest/fingerprint field:
                    // whatever loaded must still round-trip exactly.
                    let again = IndexCache::load(saved(&loaded).as_slice())
                        .expect("re-saved cache loads");
                    prop_assert_eq!(again, loaded);
                }
            }
        }
    }

    /// Truncation at every possible length is always a typed error (an
    /// empty prefix included), except the full length which must load.
    #[test]
    fn every_truncation_is_rejected(seed in 0u64..100_000) {
        let cache = cache_from_seed(seed, 2);
        let bytes = saved(&cache);
        for cut in 0..bytes.len() {
            prop_assert!(
                IndexCache::load(&bytes[..cut]).is_err(),
                "truncation to {} of {} bytes loaded",
                cut,
                bytes.len()
            );
        }
        prop_assert!(IndexCache::load(bytes.as_slice()).is_ok());
    }
}
