//! Cross-crate integration: source → 4 binaries → VM semantics → ASTs →
//! digitalized trees, checking the invariants the whole system rests on.

use asteria::compiler::{compile_program, Arch, Binary, Vm};
use asteria::core::{binarize, digitalize, extract_binary, DEFAULT_INLINE_BETA};
use asteria::decompiler::decompile_binary;
use asteria::lang::{parse, Interp};

const SRC: &str = r#"
    int table_sum(int n) {
        int tab[8];
        for (int i = 0; i < 8; i++) { tab[i] = i * n; }
        int s = 0;
        for (int i = 0; i < 8; i++) { s += tab[i]; }
        return s;
    }
    int dispatch(int x) {
        switch (x % 4) {
        case 0: return table_sum(x);
        case 1: return x * 2;
        case 2: return ext_handle(x);
        default: return 0 - x;
        }
    }
    int main_loop(int n) {
        int acc = 0;
        int i = 0;
        while (i < n % 24) {
            acc += dispatch(i);
            if (acc > 100000) { break; }
            i++;
        }
        return acc;
    }
"#;

fn binaries() -> Vec<Binary> {
    let p = parse(SRC).expect("parse");
    Arch::ALL
        .iter()
        .map(|a| compile_program(&p, *a).expect("compile"))
        .collect()
}

#[test]
fn every_arch_computes_the_reference_semantics() {
    let p = parse(SRC).unwrap();
    for args in [0i64, 3, 7, 23, 100] {
        let expected = Interp::new(&p).call("main_loop", &[args]).unwrap();
        for b in binaries() {
            let sym = b.symbol_index("main_loop").unwrap();
            let got = Vm::new(&b).call(sym, &[args]).unwrap();
            assert_eq!(got, expected, "{} diverged on main_loop({args})", b.arch);
        }
    }
}

#[test]
fn decompilation_covers_every_function_on_every_arch() {
    for b in binaries() {
        let funcs = decompile_binary(&b).unwrap();
        assert_eq!(funcs.len(), 3, "{}", b.arch);
        for f in &funcs {
            assert!(f.ast_size() >= 5, "{}: {} too small", b.arch, f.name);
            assert!(f.inst_count > 0);
        }
    }
}

#[test]
fn extraction_filters_and_features_are_consistent() {
    for b in binaries() {
        let fns = extract_binary(&b, DEFAULT_INLINE_BETA).unwrap();
        for f in &fns {
            assert_eq!(f.tree.size(), f.ast_size);
            // Binarization preserves node count.
            assert!(f.ast_size >= 5);
        }
        // main_loop calls dispatch (and dispatch calls two more).
        let main = fns.iter().find(|f| f.name == "main_loop").unwrap();
        assert!(
            main.callee_count >= 1,
            "{}: {:?}",
            b.arch,
            main.callee_count
        );
    }
}

#[test]
fn callee_counts_are_arch_invariant() {
    let counts: Vec<Vec<usize>> = binaries()
        .iter()
        .map(|b| {
            let mut fns = extract_binary(b, DEFAULT_INLINE_BETA).unwrap();
            fns.sort_by(|a, b| a.name.cmp(&b.name));
            fns.iter().map(|f| f.callee_count).collect()
        })
        .collect();
    for w in counts.windows(2) {
        assert_eq!(
            w[0], w[1],
            "callee counts must not depend on the architecture"
        );
    }
}

#[test]
fn digitalization_is_deterministic_and_stripping_safe() {
    let p = parse(SRC).unwrap();
    let mut b = compile_program(&p, Arch::Arm).unwrap();
    let before: Vec<_> = decompile_binary(&b)
        .unwrap()
        .iter()
        .map(|f| binarize(&digitalize(f)))
        .collect();
    b.strip();
    let after: Vec<_> = decompile_binary(&b)
        .unwrap()
        .iter()
        .map(|f| binarize(&digitalize(f)))
        .collect();
    // Stripping changes names but must not change the recovered trees.
    assert_eq!(before, after);
}

#[test]
fn binary_roundtrips_through_serialization() {
    for b in binaries() {
        let mut buf = Vec::new();
        b.save(&mut buf).unwrap();
        let b2 = Binary::load(buf.as_slice()).unwrap();
        assert_eq!(b, b2);
    }
}
