//! End-to-end baseline behaviour on a real synthetic corpus: both
//! baselines must be meaningfully better than chance (they are real
//! systems), and the trained Asteria model must beat both — the paper's
//! central comparative claim, asserted as a regression test.

use asteria::baselines::{
    diaphora_similarity, extract_acfg, hash_ast, Acfg, GeminiConfig, GeminiModel,
};
use asteria::core::{digitalize, train, AsteriaModel, ModelConfig, TrainOptions};
use asteria::datasets::{
    build_corpus, build_pairs, to_train_pairs, Corpus, CorpusConfig, PairConfig, PairSet,
};
use asteria::eval::{auc, ScoredPair};

struct Fixture {
    corpus: Corpus,
    train_set: PairSet,
    test_set: PairSet,
    acfgs: Vec<Acfg>,
    hashes: Vec<asteria::baselines::DiaphoraHash>,
}

fn fixture() -> Fixture {
    let corpus = build_corpus(&CorpusConfig {
        packages: 6,
        functions_per_package: 6,
        seed: 91,
        ..Default::default()
    });
    let pairs = build_pairs(
        &corpus,
        &PairConfig {
            positives_per_combination: 25,
            negatives_per_combination: 25,
            seed: 3,
        },
    );
    let (train_set, test_set) = pairs.split(0.8, 5);
    let mut acfgs = Vec::new();
    let mut hashes = Vec::new();
    for inst in &corpus.instances {
        let cb = corpus
            .binaries
            .iter()
            .find(|b| b.package == inst.package && b.arch == inst.arch)
            .unwrap();
        let sym = cb.binary.symbol_index(&inst.name).unwrap();
        acfgs.push(extract_acfg(&cb.binary, sym).unwrap());
        let df = asteria::decompiler::decompile_function(&cb.binary, sym).unwrap();
        hashes.push(hash_ast(&digitalize(&df)));
    }
    Fixture {
        corpus,
        train_set,
        test_set,
        acfgs,
        hashes,
    }
}

#[test]
fn diaphora_beats_chance_and_asteria_is_competitive() {
    let fx = fixture();
    let diaphora: Vec<ScoredPair> = fx
        .test_set
        .pairs
        .iter()
        .map(|p| {
            ScoredPair::new(
                diaphora_similarity(&fx.hashes[p.a], &fx.hashes[p.b]),
                p.homologous,
            )
        })
        .collect();
    let d_auc = auc(&diaphora);
    assert!(d_auc > 0.6, "Diaphora should beat chance: {d_auc:.4}");

    let mut model = AsteriaModel::new(ModelConfig::default());
    train(
        &mut model,
        &to_train_pairs(&fx.corpus, &fx.train_set),
        &TrainOptions {
            epochs: 6,
            seed: 7,
            verbose: false,
        },
        None,
    );
    let asteria: Vec<ScoredPair> = fx
        .test_set
        .pairs
        .iter()
        .map(|p| {
            ScoredPair::new(
                model.similarity(
                    &fx.corpus.instances[p.a].extracted.tree,
                    &fx.corpus.instances[p.b].extracted.tree,
                ) as f64,
                p.homologous,
            )
        })
        .collect();
    let a_auc = auc(&asteria);
    // At this miniature scale (6 packages, 6 epochs) the full superiority
    // claim is noisy; the proper-scale comparison lives in the fig6_roc
    // harness. Here we assert the shape cannot invert badly.
    assert!(a_auc > 0.9, "Asteria should be strong: {a_auc:.4}");
    assert!(
        a_auc > d_auc - 0.05,
        "Asteria ({a_auc:.4}) fell far behind Diaphora ({d_auc:.4})"
    );
}

#[test]
fn gemini_trains_and_beats_chance() {
    let fx = fixture();
    let mut gemini = GeminiModel::new(GeminiConfig::default());
    let gemini_pairs: Vec<(Acfg, Acfg, bool)> = fx
        .train_set
        .pairs
        .iter()
        .map(|p| (fx.acfgs[p.a].clone(), fx.acfgs[p.b].clone(), p.homologous))
        .collect();
    let mut rng = rand::SeedableRng::seed_from_u64(9);
    for _ in 0..6 {
        gemini.train_epoch(&gemini_pairs, &mut rng);
    }
    let scores: Vec<ScoredPair> = fx
        .test_set
        .pairs
        .iter()
        .map(|p| {
            let s = GeminiModel::similarity_from_embeddings(
                &gemini.embed(&fx.acfgs[p.a]),
                &gemini.embed(&fx.acfgs[p.b]),
            ) as f64;
            ScoredPair::new(s, p.homologous)
        })
        .collect();
    let g_auc = auc(&scores);
    assert!(
        g_auc > 0.7,
        "Gemini should be well above chance: {g_auc:.4}"
    );
}

#[test]
fn diaphora_hash_is_structure_blind_but_asteria_is_not() {
    // Two functions with the same node multiset but different statement
    // order: Diaphora scores them identical to a true clone; the Tree-LSTM
    // distinguishes them.
    use asteria::compiler::{compile_program, Arch};
    let src_a = "int f(int a) { int x = a + 1; int y = a * 2; return x - y; }";
    let src_b = "int f(int a) { int x = a * 2; int y = a + 1; return x - y; }";
    let pa = asteria::lang::parse(src_a).unwrap();
    let pb = asteria::lang::parse(src_b).unwrap();
    let ba = compile_program(&pa, Arch::Arm).unwrap();
    let bb = compile_program(&pb, Arch::Arm).unwrap();
    let da = asteria::decompiler::decompile_function(&ba, 0).unwrap();
    let db = asteria::decompiler::decompile_function(&bb, 0).unwrap();
    let ha = hash_ast(&digitalize(&da));
    let hb = hash_ast(&digitalize(&db));
    assert_eq!(
        diaphora_similarity(&ha, &hb),
        1.0,
        "multiset hash cannot see statement order"
    );
    let model = AsteriaModel::new(ModelConfig::default());
    let ta = asteria::core::binarize(&digitalize(&da));
    let tb = asteria::core::binarize(&digitalize(&db));
    let ea = model.encode(&ta);
    let eb = model.encode(&tb);
    assert_ne!(ea, eb, "the Tree-LSTM encoding is order-sensitive");
}
