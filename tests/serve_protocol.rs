//! The `asteria serve` wire protocol under load and under attack.
//!
//! Four contracts from the serving layer's design:
//!
//! 1. **Bit identity**: answers delivered over TCP to many concurrent
//!    clients are byte-identical to direct [`SearchSession`] calls, at
//!    every server thread count — the protocol layer may not perturb a
//!    single score bit.
//! 2. **Typed degradation**: malformed, oversized and past-deadline
//!    requests get typed error responses; a seeded protocol corruptor
//!    must never produce a panic or a wedged connection.
//! 3. **Backpressure**: a saturated queue answers `overloaded`
//!    immediately, and every request still gets exactly one response.
//! 4. **Graceful drain**: shutdown with requests in flight loses zero
//!    responses.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use asteria::compiler::Arch;
use asteria::core::{AsteriaModel, ModelConfig};
use asteria::corrupt::Corruptor;
use asteria::serve::json::Json;
use asteria::serve::{proto, ServeConfig, ServerHandle};
use asteria::vulnsearch::{
    build_firmware_corpus, vulnerability_library, FirmwareConfig, FunctionQuery, IndexBuilder,
    SearchSession,
};

/// A small corpus/model: large enough for a 30+-function index, small
/// enough that a query encodes in milliseconds.
fn session(threads: usize) -> Arc<SearchSession> {
    let model = AsteriaModel::new(ModelConfig {
        hidden_dim: 8,
        embed_dim: 6,
        ..Default::default()
    });
    let firmware = build_firmware_corpus(
        &FirmwareConfig {
            images: 2,
            ..Default::default()
        },
        &vulnerability_library(),
    );
    let build = IndexBuilder::new(&model)
        .threads(1)
        .build(&firmware)
        .expect("in-memory build cannot fail");
    Arc::new(SearchSession::new(model, build.index).threads(threads))
}

fn start(session: Arc<SearchSession>, config: ServeConfig) -> ServerHandle {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    asteria::serve::start_tcp(session, config, listener).expect("start")
}

/// Distinct query functions so concurrent batches mix unique work with
/// in-batch duplicates.
fn query_sources() -> Vec<(&'static str, &'static str)> {
    vec![
        ("alpha", "int alpha(int a) { return a * 31 + 7; }"),
        (
            "beta",
            "int beta(int n) { int s = 0; for (int i = 0; i < n % 8; i++) { s = s + i * i; } return s; }",
        ),
        (
            "gamma",
            "int gamma(int x) { if (x > 10) { return x - 10; } return 0 - x; }",
        ),
        (
            "delta",
            "int delta(int a, int b) { return (a ^ b) + (a & b) * 2; }",
        ),
    ]
}

fn query_line(id: u64, function: &str, source: &str) -> String {
    format!("{{\"id\":{id},\"op\":\"query\",\"function\":\"{function}\",\"source\":\"{source}\"}}")
}

/// The response the server *must* produce for `query_line(id, …)`,
/// computed through a direct in-process session call and the same
/// renderer — the reference for byte-level comparison.
fn expected_response(session: &SearchSession, id: u64, function: &str, source: &str) -> String {
    let q = FunctionQuery::new("direct", source, function, Arch::X86);
    let outcome = session.query(&q).expect("direct query succeeds");
    proto::ok_response(
        &Json::from(id),
        proto::render_outcome(&outcome, session.index()),
    )
}

/// Extracts the numeric id from a response line (`{"id":N,…`).
fn response_id(line: &str) -> Option<u64> {
    let rest = line.strip_prefix("{\"id\":")?;
    let end = rest.find([',', '}'])?;
    rest[..end].parse().ok()
}

#[test]
fn concurrent_tcp_clients_are_bit_identical_to_direct_session_calls() {
    const CLIENTS: u64 = 16;
    let sources = query_sources();
    let reference = session(1);
    // Expected wire bytes per (client, query) — identical across every
    // server thread count, or determinism is broken somewhere.
    let mut expected: HashMap<u64, String> = HashMap::new();
    for c in 0..CLIENTS {
        for (k, (function, source)) in sources.iter().enumerate() {
            let id = c * 100 + k as u64;
            expected.insert(id, expected_response(&reference, id, function, source));
        }
    }

    for server_threads in [1usize, 2, 8] {
        let handle = start(
            session(server_threads),
            ServeConfig {
                batch_size: 8,
                batch_wait_ms: 2,
                ..ServeConfig::default()
            },
        );
        let addr = handle.local_addr();
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let sources = sources.clone();
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut stream = stream;
                    for (k, (function, source)) in sources.iter().enumerate() {
                        let line = query_line(c * 100 + k as u64, function, source);
                        stream
                            .write_all(format!("{line}\n").as_bytes())
                            .expect("send");
                    }
                    let mut got = Vec::new();
                    for _ in 0..sources.len() {
                        let mut line = String::new();
                        reader.read_line(&mut line).expect("response");
                        got.push(line.trim_end().to_string());
                    }
                    got
                })
            })
            .collect();
        let mut responses: HashMap<u64, String> = HashMap::new();
        for w in workers {
            for line in w.join().expect("client thread") {
                let id = response_id(&line).expect("response carries its id");
                responses.insert(id, line);
            }
        }
        let stats = handle.shutdown();
        assert_eq!(responses.len(), expected.len(), "a response went missing");
        for (id, want) in &expected {
            assert_eq!(
                responses.get(id),
                Some(want),
                "response {id} diverged from the direct session call at \
                 {server_threads} server threads"
            );
        }
        assert_eq!(stats.ok, CLIENTS * sources.len() as u64);
        assert_eq!(stats.total(), stats.ok, "no error outcomes expected");
    }
}

#[test]
fn protocol_corruption_never_panics_or_wedges_the_connection() {
    const ROUNDS: u64 = 300;
    let handle = start(
        session(1),
        ServeConfig {
            batch_wait_ms: 0,
            ..ServeConfig::default()
        },
    );
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    let (function, source) = query_sources()[0];
    let pristine = query_line(0, function, source);

    for seed in 0..ROUNDS {
        let mut c = Corruptor::new(0x5e7e ^ seed.wrapping_mul(0x9e37));
        let (_mutation, corrupted) = c.corrupt_line(&pristine);
        stream.write_all(&corrupted).expect("send corrupted");
        stream.write_all(b"\n").expect("send newline");
        // A ping with a unique id proves the server survived the
        // corrupted line and the stream still frames correctly. The
        // corrupted line itself yields zero or one response (blank
        // lines are ignored; everything else gets a typed reply).
        let ping_id = 1_000_000 + seed;
        stream
            .write_all(format!("{{\"id\":{ping_id},\"op\":\"ping\"}}\n").as_bytes())
            .expect("send ping");
        let mut saw_pong = false;
        for _ in 0..3 {
            let mut line = String::new();
            let n = reader.read_line(&mut line).expect("server stayed up");
            assert!(n > 0, "server closed the connection on seed {seed}");
            if response_id(&line) == Some(ping_id) {
                assert!(line.contains("\"pong\":true"), "seed {seed}: {line}");
                saw_pong = true;
                break;
            }
            // Otherwise it is the reply to the corrupted line: usually a
            // typed error, but a mutation inside the source string can
            // leave a valid (just different) query, so `ok:true` is
            // legitimate too. It must still be a well-formed response.
            assert!(
                line.starts_with("{\"id\":") && line.contains("\"ok\":"),
                "seed {seed}: unexpected response to corrupted line: {line}"
            );
        }
        assert!(saw_pong, "seed {seed}: pong never arrived");
    }

    // The connection still serves real queries after 300 corruptions.
    let reference = session(1);
    stream
        .write_all(format!("{}\n", query_line(42, function, source)).as_bytes())
        .expect("send real query");
    let mut line = String::new();
    loop {
        line.clear();
        reader.read_line(&mut line).expect("final response");
        if response_id(&line) == Some(42) {
            break;
        }
    }
    assert_eq!(
        line.trim_end(),
        expected_response(&reference, 42, function, source),
        "post-corruption query diverged"
    );
    let stats = handle.shutdown();
    assert!(
        stats.malformed > 0,
        "corruptor never produced malformed input"
    );
}

#[test]
fn oversized_and_past_deadline_requests_get_typed_errors() {
    let handle = start(
        session(1),
        ServeConfig {
            max_request_bytes: 256,
            batch_wait_ms: 0,
            ..ServeConfig::default()
        },
    );
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;

    // A line over the cap: typed `oversized`, stream keeps framing.
    let huge = format!(
        "{{\"id\":1,\"op\":\"query\",\"source\":\"{}\"}}",
        "x".repeat(512)
    );
    stream
        .write_all(format!("{huge}\n").as_bytes())
        .expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("oversized reply");
    assert!(line.contains("\"kind\":\"oversized\""), "{line}");

    // deadline_ms:0 expires before any batch can run: deterministic
    // `deadline_exceeded`.
    let (function, source) = query_sources()[0];
    let late = format!(
        "{{\"id\":2,\"op\":\"query\",\"function\":\"{function}\",\"source\":\"{source}\",\
         \"deadline_ms\":0}}"
    );
    stream
        .write_all(format!("{late}\n").as_bytes())
        .expect("send");
    line.clear();
    reader.read_line(&mut line).expect("deadline reply");
    assert_eq!(response_id(&line), Some(2));
    assert!(line.contains("\"kind\":\"deadline_exceeded\""), "{line}");

    // And the connection still answers a well-formed request.
    stream
        .write_all(b"{\"id\":3,\"op\":\"ping\"}\n")
        .expect("send ping");
    line.clear();
    reader.read_line(&mut line).expect("pong");
    assert!(line.contains("\"pong\":true"), "{line}");

    let stats = handle.shutdown();
    assert_eq!(stats.oversized, 1);
    assert_eq!(stats.deadline_exceeded, 1);
}

#[test]
fn saturation_yields_typed_overloaded_and_exactly_one_response_per_request() {
    const SENT: u64 = 30;
    let handle = start(
        session(1),
        ServeConfig {
            batch_size: 1,
            batch_wait_ms: 0,
            queue_capacity: 2,
            process_delay_ms: 40,
            ..ServeConfig::default()
        },
    );
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    let (function, source) = query_sources()[1];
    for id in 0..SENT {
        stream
            .write_all(format!("{}\n", query_line(id, function, source)).as_bytes())
            .expect("send");
    }
    let mut outcomes: HashMap<u64, &'static str> = HashMap::new();
    for _ in 0..SENT {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .expect("every request is answered");
        let id = response_id(&line).expect("id");
        let outcome = if line.contains("\"ok\":true") {
            "ok"
        } else if line.contains("\"kind\":\"overloaded\"") {
            "overloaded"
        } else {
            panic!("unexpected response under saturation: {line}");
        };
        assert!(
            outcomes.insert(id, outcome).is_none(),
            "request {id} answered twice"
        );
    }
    let stats = handle.shutdown();
    assert_eq!(outcomes.len() as u64, SENT, "a request went unanswered");
    assert!(
        stats.overloaded > 0,
        "saturation never triggered backpressure"
    );
    assert_eq!(
        stats.ok + stats.overloaded,
        SENT,
        "outcome accounting diverged: {stats:?}"
    );
}

#[test]
fn shutdown_with_requests_in_flight_loses_zero_responses() {
    const SENT: u64 = 12;
    let handle = start(
        session(1),
        ServeConfig {
            batch_size: 4,
            batch_wait_ms: 0,
            process_delay_ms: 30,
            ..ServeConfig::default()
        },
    );
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    let (function, source) = query_sources()[2];
    for id in 0..SENT {
        stream
            .write_all(format!("{}\n", query_line(id, function, source)).as_bytes())
            .expect("send");
    }
    // Wait for the first response so requests are demonstrably in
    // flight, then shut down while the rest are still queued.
    let mut first = String::new();
    reader.read_line(&mut first).expect("first response");
    let collector = std::thread::spawn(move || {
        let mut lines = vec![first.trim_end().to_string()];
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => lines.push(line.trim_end().to_string()),
            }
        }
        lines
    });
    let stats = handle.shutdown();
    let lines = collector.join().expect("collector");
    assert_eq!(
        lines.len() as u64,
        SENT,
        "shutdown dropped responses: {lines:?}"
    );
    let mut ids: Vec<u64> = lines.iter().map(|l| response_id(l).expect("id")).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..SENT).collect::<Vec<_>>(), "an id went missing");
    for line in &lines {
        assert!(
            line.contains("\"ok\":true") || line.contains("\"kind\":\"shutting_down\""),
            "unexpected outcome during drain: {line}"
        );
    }
    assert_eq!(stats.ok + stats.shutting_down, SENT, "{stats:?}");
    assert!(stats.ok > 0, "nothing was served before the drain");
}
