//! End-to-end model training on a real (small) synthetic corpus: the
//! trained Asteria model must separate homologous from non-homologous
//! cross-architecture pairs well above chance, calibration must help or
//! at least not hurt, and encodings must be cache-consistent.

use asteria::core::{calibrated_similarity, train, AsteriaModel, ModelConfig, TrainOptions};
use asteria::datasets::{
    build_corpus, build_pairs, to_train_pairs, Corpus, CorpusConfig, PairConfig, PairSet,
};
use asteria::eval::{auc, ScoredPair};

fn scores(
    model: &AsteriaModel,
    corpus: &Corpus,
    set: &PairSet,
    calibrate: bool,
) -> Vec<ScoredPair> {
    set.pairs
        .iter()
        .map(|p| {
            let ia = &corpus.instances[p.a];
            let ib = &corpus.instances[p.b];
            let m = model.similarity_from_encodings(
                &model.encode(&ia.extracted.tree),
                &model.encode(&ib.extracted.tree),
            ) as f64;
            let s = if calibrate {
                calibrated_similarity(m, ia.extracted.callee_count, ib.extracted.callee_count)
            } else {
                m
            };
            ScoredPair::new(s, p.homologous)
        })
        .collect()
}

fn fixture() -> (Corpus, PairSet, PairSet) {
    let corpus = build_corpus(&CorpusConfig {
        packages: 6,
        functions_per_package: 6,
        seed: 33,
        ..Default::default()
    });
    let pairs = build_pairs(
        &corpus,
        &PairConfig {
            positives_per_combination: 25,
            negatives_per_combination: 25,
            seed: 3,
        },
    );
    let (train_set, test_set) = pairs.split(0.8, 5);
    (corpus, train_set, test_set)
}

#[test]
fn training_reaches_high_auc_on_heldout_pairs() {
    let (corpus, train_set, test_set) = fixture();
    let mut model = AsteriaModel::new(ModelConfig::default());
    let before = auc(&scores(&model, &corpus, &test_set, false));
    let tp = to_train_pairs(&corpus, &train_set);
    train(
        &mut model,
        &tp,
        &TrainOptions {
            epochs: 6,
            seed: 7,
            verbose: false,
        },
        None,
    );
    let after = auc(&scores(&model, &corpus, &test_set, false));
    assert!(
        after > 0.9,
        "trained AUC too low: {after:.4} (untrained was {before:.4})"
    );
    assert!(
        after >= before - 0.05,
        "training must not destroy the model"
    );
}

#[test]
fn calibration_does_not_hurt() {
    let (corpus, train_set, test_set) = fixture();
    let mut model = AsteriaModel::new(ModelConfig::default());
    let tp = to_train_pairs(&corpus, &train_set);
    train(
        &mut model,
        &tp,
        &TrainOptions {
            epochs: 6,
            seed: 7,
            verbose: false,
        },
        None,
    );
    let woc = auc(&scores(&model, &corpus, &test_set, false));
    let with = auc(&scores(&model, &corpus, &test_set, true));
    assert!(
        with >= woc - 0.02,
        "calibration hurt badly: with={with:.4} woc={woc:.4}"
    );
}

#[test]
fn model_roundtrips_through_serialization_after_training() {
    let (corpus, train_set, test_set) = fixture();
    let mut model = AsteriaModel::new(ModelConfig::default());
    let tp = to_train_pairs(&corpus, &train_set);
    train(
        &mut model,
        &tp,
        &TrainOptions {
            epochs: 2,
            seed: 7,
            verbose: false,
        },
        None,
    );
    let snapshot = model.snapshot();
    let mut restored = AsteriaModel::new(ModelConfig::default());
    restored.restore(&snapshot).expect("matching configuration");
    let a = scores(&model, &corpus, &test_set, true);
    let b = scores(&restored, &corpus, &test_set, true);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.score, y.score);
    }
}

#[test]
fn cached_encodings_equal_full_forward() {
    let (corpus, _, test_set) = fixture();
    let model = AsteriaModel::new(ModelConfig::default());
    for p in test_set.pairs.iter().take(10) {
        let ta = &corpus.instances[p.a].extracted.tree;
        let tb = &corpus.instances[p.b].extracted.tree;
        let full = model.similarity(ta, tb);
        let fast = model.similarity_from_encodings(&model.encode(ta), &model.encode(tb));
        assert!((full - fast).abs() < 1e-5, "{full} vs {fast}");
    }
}
