//! Determinism of the observability layer: obs **counters** must be
//! identical at every thread count (each unit of work is counted exactly
//! once, no matter which worker does it), and recording must never
//! perturb any bit-identity-checked payload — the search index bits and
//! the ASIX cache bytes are the same with the recorder on or off.
//!
//! Timings (histogram sums, span durations) are intentionally out of
//! scope: only counts carry the invariant.

use std::sync::{Mutex, MutexGuard, PoisonError};

use asteria::core::{AsteriaModel, ModelConfig};
use asteria::vulnsearch::{
    build_firmware_corpus, vulnerability_library, FirmwareConfig, IndexBuilder, IndexCache,
    SearchIndex,
};

fn build_threads(
    model: &AsteriaModel,
    firmware: &[asteria::vulnsearch::FirmwareImage],
    threads: usize,
) -> SearchIndex {
    IndexBuilder::new(model)
        .threads(threads)
        .build(firmware)
        .expect("in-memory build cannot fail")
        .index
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The obs collector is process-global, so tests that record must not
/// overlap; each one holds this lock for its whole body.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// RAII for a recording session: serializes against other tests and
/// always disables the recorder on the way out, even on panic.
struct Recording {
    _guard: MutexGuard<'static, ()>,
}

impl Recording {
    fn start() -> Recording {
        let guard = OBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        asteria::obs::install().reset();
        Recording { _guard: guard }
    }

    fn collector(&self) -> &'static asteria::obs::Collector {
        asteria::obs::install()
    }
}

impl Drop for Recording {
    fn drop(&mut self) {
        asteria::obs::set_enabled(false);
    }
}

fn fixture() -> (AsteriaModel, Vec<asteria::vulnsearch::FirmwareImage>) {
    let model = AsteriaModel::new(ModelConfig {
        hidden_dim: 12,
        embed_dim: 8,
        ..Default::default()
    });
    let firmware = build_firmware_corpus(
        &FirmwareConfig {
            images: 4,
            ..Default::default()
        },
        &vulnerability_library(),
    );
    (model, firmware)
}

fn assert_index_identical(a: &SearchIndex, b: &SearchIndex, what: &str) {
    assert_eq!(a.extraction, b.extraction, "extraction report: {what}");
    assert_eq!(a.functions.len(), b.functions.len(), "length: {what}");
    for (i, (x, y)) in a.functions.iter().zip(&b.functions).enumerate() {
        assert_eq!(
            (x.image, x.binary),
            (y.image, y.binary),
            "order @{i}: {what}"
        );
        assert_eq!(x.name, y.name, "name @{i}: {what}");
        assert_eq!(x.ground_truth, y.ground_truth, "ground truth @{i}: {what}");
        assert_eq!(
            x.encoding.callee_count, y.encoding.callee_count,
            "callee count @{i}: {what}"
        );
        let bits_x: Vec<u32> = x.encoding.vector.iter().map(|v| v.to_bits()).collect();
        let bits_y: Vec<u32> = y.encoding.vector.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_x, bits_y, "encoding bits @{i}: {what}");
    }
}

#[test]
fn counters_are_identical_at_every_thread_count() {
    let (model, firmware) = fixture();
    let rec = Recording::start();
    let collector = rec.collector();

    let mut reference = None;
    for threads in THREAD_COUNTS {
        collector.reset();
        let index = build_threads(&model, &firmware, threads);
        assert!(!index.is_empty());
        let counters = collector.snapshot().counters;

        // The corpus-wide tallies must be present and plausible…
        let indexed = counters
            .iter()
            .find(|(k, _)| k.starts_with("asteria_functions_indexed_total"))
            .map(|(_, v)| *v)
            .expect("indexed counter present");
        assert_eq!(indexed, index.len() as u64, "{threads} threads");
        let encoded = counters
            .iter()
            .find(|(k, _)| k.starts_with("asteria_functions_encoded_total"))
            .map(|(_, v)| *v)
            .expect("encoded counter present");
        assert!(encoded > 0, "{threads} threads");

        // …and the *entire* counter map — per-arch decompile tallies,
        // budget/outcome taxonomies, cache stats — must not depend on
        // the worker count.
        match &reference {
            None => reference = Some(counters),
            Some(want) => assert_eq!(
                &counters, want,
                "obs counters diverged at {threads} threads"
            ),
        }
    }
}

#[test]
fn span_structure_is_identical_at_every_thread_count() {
    let (model, firmware) = fixture();
    let rec = Recording::start();
    let collector = rec.collector();

    let mut reference = None;
    for threads in THREAD_COUNTS {
        collector.reset();
        build_threads(&model, &firmware, threads);
        // The multiset of (path, items) pairs is deterministic even
        // though start times and interleavings are not.
        let mut shape: Vec<(String, u64)> = collector
            .finished_spans()
            .into_iter()
            .map(|s| (s.path, s.items))
            .collect();
        shape.sort();
        assert!(
            shape.iter().any(|(p, _)| p == "index-build"),
            "missing root span at {threads} threads"
        );
        assert!(
            shape.iter().any(|(p, _)| p == "index-build/encode-binary"),
            "missing child span at {threads} threads"
        );
        match &reference {
            None => reference = Some(shape),
            Some(want) => assert_eq!(&shape, want, "span structure diverged at {threads} threads"),
        }
    }
}

#[test]
fn recording_never_perturbs_index_bits() {
    let (model, firmware) = fixture();
    let rec = Recording::start();

    asteria::obs::set_enabled(false);
    let plain = build_threads(&model, &firmware, 4);
    asteria::obs::set_enabled(true);
    rec.collector().reset();
    let traced = build_threads(&model, &firmware, 4);

    assert_index_identical(&plain, &traced, "recorder on vs off");
}

#[test]
fn asix_cache_bytes_are_identical_warm_vs_cold_with_tracing() {
    let (model, firmware) = fixture();
    let rec = Recording::start();
    let collector = rec.collector();

    // Cold build with the recorder on, then persist the cache.
    let mut cold_cache = IndexCache::default();
    let (cold_index, cold_stats) = IndexBuilder::new(&model)
        .threads(4)
        .build_into(&firmware, &mut cold_cache);
    assert!(cold_stats.misses > 0);
    let mut cold_bytes = Vec::new();
    cold_cache.save(&mut cold_bytes).expect("save cold");

    // Warm rebuild from the reloaded cache, still recording: every
    // binary must hit, the index must match bit for bit, and re-saving
    // must reproduce the exact bytes — no timestamp, counter, or span
    // id may leak into the ASIX payload.
    collector.reset();
    let mut warm_cache = IndexCache::load(cold_bytes.as_slice()).expect("load");
    let (warm_index, warm_stats) = IndexBuilder::new(&model)
        .threads(4)
        .build_into(&firmware, &mut warm_cache);
    assert_eq!(warm_stats.misses, 0, "warm build re-encoded a binary");
    assert_eq!(warm_stats.hits, cold_stats.misses);
    assert_index_identical(&cold_index, &warm_index, "warm vs cold");

    let mut warm_bytes = Vec::new();
    warm_cache.save(&mut warm_bytes).expect("save warm");
    assert_eq!(warm_bytes, cold_bytes, "ASIX bytes diverged while tracing");

    // The recorder actually recorded during those builds.
    let counters = collector.snapshot().counters;
    assert!(
        counters
            .iter()
            .any(|(k, v)| k.starts_with("asteria_cache_hits_total") && *v > 0),
        "tracing was not active during the warm build"
    );
}
