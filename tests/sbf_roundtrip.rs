//! Property test: `Binary::save`/`Binary::load` round-trips exactly, and
//! under arbitrary single-byte corruption the loader either rejects the
//! image with a typed error or yields a binary whose functions all
//! decode-or-error without panicking.

use asteria::compiler::{compile_program, decode_function, Arch, Binary};
use asteria::lang::parse;
use proptest::prelude::*;

const SRC: &str = r#"
    int helper(int a, int b) { return a * b + 7; }
    int entry(int n) {
        int s = 0;
        for (int i = 0; i < n % 10; i++) { s += helper(i, n); }
        return s;
    }
"#;

fn image(arch: Arch) -> Vec<u8> {
    let p = parse(SRC).expect("parse");
    let b = compile_program(&p, arch).expect("compile");
    let mut buf = Vec::new();
    b.save(&mut buf).expect("save");
    buf
}

#[test]
fn clean_roundtrip_every_arch() {
    let p = parse(SRC).expect("parse");
    for arch in Arch::ALL {
        let b = compile_program(&p, arch).expect("compile");
        let mut buf = Vec::new();
        b.save(&mut buf).expect("save");
        let b2 = Binary::load(buf.as_slice()).expect("load");
        assert_eq!(b, b2, "{arch}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn single_byte_corruption_never_panics(
        arch_i in 0usize..4,
        pos_seed in 0usize..1_000_000,
        value in 0u8..=255u8,
    ) {
        let arch = Arch::ALL[arch_i];
        let mut buf = image(arch);
        let pos = pos_seed % buf.len();
        let original = buf[pos];
        buf[pos] = value;
        match Binary::load(buf.as_slice()) {
            // Typed rejection is a valid outcome.
            Err(_) => {}
            Ok(b) => {
                // A still-parsable image (byte unchanged, or mutation in
                // don't-care data) must decode-or-error per function.
                for sym in b.function_indices() {
                    let _ = decode_function(&b.symbols[sym].code, b.arch);
                }
                if value == original {
                    // No actual mutation: must round-trip identically.
                    let mut again = Vec::new();
                    b.save(&mut again).expect("re-save");
                    prop_assert_eq!(&again, &buf);
                }
            }
        }
    }
}
