//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate implements the
//! subset of the proptest API the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_filter_map` / `prop_recursive`,
//! [`BoxedStrategy`], numeric-range and tuple strategies,
//! [`collection::vec`], [`sample::select`], [`any`], [`Just`], the
//! [`prop_oneof!`] / [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`]
//! macros, and [`ProptestConfig`]. Failing cases are reported via panic with
//! the generated inputs' debug output; there is no shrinking — each test is
//! driven by a per-test deterministic seed so failures reproduce exactly.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Test-runner configuration (the `cases` knob only).
pub mod test_runner {
    /// How many random cases each property test runs.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic per-test random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds the generator from a test's fully-qualified name so every
        /// run of the same test replays the same cases.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through `f`, retrying on `None` (up to an
    /// internal bound, after which the test aborts citing `reason`).
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// levels below and returns the strategy for one level up; nesting is
    /// bounded by `depth`.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }

    /// Erases the concrete strategy type (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map gave up after 10000 rejections: {}",
            self.reason
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies with the same value type
/// (backs the [`prop_oneof!`] macro).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.unit_f64() as f32
    }
}

/// The canonical strategy for `T` (whole domain for ints, `[0,1)` floats).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec`]: an exact `usize` or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` of a length drawn from the size range.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Generates vectors of values drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy yielding uniformly-chosen clones of the given options.
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Picks uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select of empty options");
        Select(options)
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over deterministically seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal muncher for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let ($($arg,)+) = ($($strat,)+);
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&$arg, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Vec<Tree>),
    }

    fn count(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(kids) => 1 + kids.iter().map(count).sum::<usize>(),
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = (0i64..100).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 24, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in -50i64..50, b in 0u8..8, f in 0.0f64..=1.0) {
            prop_assert!((-50..50).contains(&a));
            prop_assert!(b < 8);
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u32..6, 8)) {
            prop_assert_eq!(v.len(), 8);
            prop_assert!(v.iter().all(|x| *x < 6));
        }

        #[test]
        fn oneof_select_and_bool(
            pick in prop_oneof![Just(1u8), Just(2u8), Just(3u8)],
            s in crate::sample::select(vec!["a", "b"]),
            flag in any::<bool>(),
        ) {
            prop_assert!((1..=3).contains(&pick));
            prop_assert!(s == "a" || s == "b");
            prop_assert!(u8::from(flag) <= 1);
        }

        #[test]
        fn recursion_is_bounded(t in arb_tree()) {
            prop_assert!(count(&t) < 200, "{t:?}");
        }

        #[test]
        fn filter_map_filters(x in (0i64..100).prop_filter_map("even only", |x| {
            if x % 2 == 0 { Some(x) } else { None }
        })) {
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = crate::collection::vec(0u64..1000, 4);
        let mut r1 = crate::test_runner::TestRng::for_test("t");
        let mut r2 = crate::test_runner::TestRng::for_test("t");
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
