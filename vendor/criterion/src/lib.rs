//! Offline vendored stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this crate provides the
//! small slice of the criterion API the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Timing is a simple mean over `sample_size` timed batches with an
//! untimed warm-up, printed as `group/name  time: [...]` lines; there is no
//! statistical analysis, plotting, or baseline comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value wrapper (re-exported for convenience).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a stand-alone benchmark (group-less).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing the parent driver's settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `f` and prints a `group/name  time: [...]` line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.criterion.sample_size, &mut f);
        self
    }

    /// Finishes the group (no-op in this stand-in).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    // Warm-up pass (untimed).
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);

    // Pick an iteration count so one sample takes roughly a millisecond.
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1)) / bencher.iters;
    let iters_per_sample = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, 1_000_000) as u32;

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<44} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(mean),
        fmt_time(hi)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("smoke");
        let mut count = 0u64;
        group.bench_function("add", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with(" s"));
    }
}
