//! Offline vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the small slice of `rand` it actually uses: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, a deterministic
//! [`rngs::StdRng`] (SplitMix64-seeded xoshiro256++), uniform range
//! sampling for the primitive numeric types, and [`seq::SliceRandom`]
//! shuffling. Determinism is the only distribution property the workspace
//! relies on (seeded corpora, seeded weight init), and that is preserved:
//! the generator is a real, well-distributed PRNG, just not bit-compatible
//! with upstream `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be created from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = split_mix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = split_mix64(sm ^ 0x9e37_79b9_7f4a_7c15);
            let bytes = sm.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

fn split_mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s.iter().all(|w| *w == 0) {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }
}

/// Uniform sampling support for `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Distributions (the `Standard` distribution subset).
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over the whole type domain
    /// (floats: `[0, 1)`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

use distributions::{Distribution, Standard};

/// The user-facing random value API (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Draws one value from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let f: f64 = rng.gen_range(0.0..8.0);
            assert!((0.0..8.0).contains(&f));
            let g: f32 = rng.gen_range(-1.5..=1.5f32);
            assert!((-1.5..=1.5).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|s| *s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_float_gen_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
